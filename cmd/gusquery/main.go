// Command gusquery evaluates a SQL aggregate query with TABLESAMPLE
// clauses and prints the estimate, confidence interval and — with -v —
// the plan and the SOA rewrite trace that produced the top GUS operator.
//
// Tables come from files written by gusgen — -data dir opens every
// *.gusseg columnar segment in it (mmap, no parse) or, when there are
// none, loads every *.csv — or from an in-process TPC-H generator (-gen).
//
//	gusquery -gen 0.001 -q "SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (10 PERCENT)"
//	gusquery -data ./data -v -q "$(cat query.sql)"
//
// With -progressive the query runs as online aggregation: one line per
// partition wave (estimate, confidence interval, % scanned), stopping at
// -target relative CI accuracy, -deadline, -maxfrac scan budget, or the
// complete scan — whichever comes first:
//
//	gusquery -gen 0.02 -progressive -target 0.01 \
//	    -q "SELECT SUM(l_extendedprice*(1.0-l_discount)) FROM lineitem TABLESAMPLE (90 PERCENT)"
//
// With -prepare the query is compiled once through db.Prepare and executed
// as a prepared statement; -args binds positional `?` placeholders
// (comma-separated; integers, floats and bare strings are inferred):
//
//	gusquery -gen 0.001 -prepare -args "25,100.0" \
//	    -q "SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (? PERCENT) WHERE l_extendedprice > ?"
//
// With -explain the annotated execution trace (per-operator timings, row
// counts, sampling fractions, stage table) is printed after the result,
// like EXPLAIN ANALYZE; -trace-json FILE writes the same trace as JSON:
//
//	gusquery -gen 0.001 -explain -trace-json trace.json \
//	    -q "SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (10 PERCENT)"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	var (
		query     = flag.String("q", "", "SQL query (required)")
		dataDir   = flag.String("data", "", "directory of CSV tables (from gusgen)")
		genSF     = flag.Float64("gen", 0, "generate TPC-H data at this scale factor instead of loading")
		seed      = flag.Uint64("seed", 1, "sampling seed")
		level     = flag.Float64("confidence", 0.95, "confidence level")
		chebyshev = flag.Bool("chebyshev", false, "use Chebyshev (distribution-free) intervals")
		subsample = flag.Int("subsample", 0, "§7 variance sub-sampling target rows (0 = off)")
		workers   = flag.Int("workers", 0, "engine worker-pool width (0 = GOMAXPROCS; results are seed-stable at any width)")
		exact     = flag.Bool("exact", false, "also run the query exactly and report the true error")
		verbose   = flag.Bool("v", false, "print the plan and the SOA rewrite trace")
		explain   = flag.Bool("explain", false, "print the annotated execution trace (EXPLAIN ANALYZE output) after the result")
		traceJSON = flag.String("trace-json", "", "write the execution trace as JSON to this `file`")

		prepare  = flag.Bool("prepare", false, "compile the query once with db.Prepare and execute it as a prepared statement (reports prepare/execute timings)")
		argsFlag = flag.String("args", "", "comma-separated positional values for `?` placeholders (implies a prepared statement)")

		progressive = flag.Bool("progressive", false, "online aggregation: print one refining estimate per partition wave")
		target      = flag.Float64("target", 0, "with -progressive: stop once the CI half-width is at most this fraction of the estimate (0 = off)")
		deadline    = flag.Duration("deadline", 0, "with -progressive: stop at the first wave boundary after this duration (0 = off)")
		maxFrac     = flag.Float64("maxfrac", 0, "with -progressive: stop after scanning this fraction of the data (0 = off)")
		waveRows    = flag.Int("waverows", 0, "with -progressive: input rows per wave (0 = default 8192)")

		synSpec    = flag.String("synopsis", "", "materialize a synopsis before querying: table:rate[:seed] (e.g. lineitem:0.02); sampled scans it subsumes are served from it")
		noSynopsis = flag.Bool("no-synopsis", false, "disable synopsis-serving for this query (A/B: compare against a run without this flag)")
	)
	flag.Parse()
	if *query == "" {
		fail(fmt.Errorf("-q is required"))
	}

	db := gus.Open()
	switch {
	case *genSF > 0:
		if err := db.AttachTPCH(*genSF, *seed); err != nil {
			fail(err)
		}
	case *dataDir != "":
		segs, err := filepath.Glob(filepath.Join(*dataDir, "*"+gus.SegmentExt))
		if err != nil {
			fail(err)
		}
		if len(segs) > 0 {
			if err := db.AttachSegmentDir(*dataDir); err != nil {
				fail(err)
			}
			for _, info := range db.Tables() {
				fmt.Fprintf(os.Stderr, "attached %s (%d rows, segment)\n", info.Name, info.Rows)
			}
			if _, err := os.Stat(filepath.Join(*dataDir, gus.SynopsisManifest)); err == nil {
				if err := db.LoadSynopses(*dataDir); err != nil {
					fail(err)
				}
				for _, info := range db.Synopses() {
					fmt.Fprintf(os.Stderr, "loaded synopsis %s: %s, %d rows\n", info.Name, info.GUS, info.Rows)
				}
			}
			break
		}
		paths, err := filepath.Glob(filepath.Join(*dataDir, "*.csv"))
		if err != nil {
			fail(err)
		}
		if len(paths) == 0 {
			fail(fmt.Errorf("no *%s or *.csv files in %s", gus.SegmentExt, *dataDir))
		}
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".csv")
			if err := db.LoadCSV(name, p); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "loaded %s\n", name)
		}
	default:
		fail(fmt.Errorf("provide -data DIR or -gen SF"))
	}
	defer db.Close()

	if *synSpec != "" {
		spec, err := parseSynopsisSpec(*synSpec)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		if err := db.CreateSynopsis(spec); err != nil {
			fail(err)
		}
		for _, info := range db.Synopses() {
			if info.Name == spec.Name {
				fmt.Fprintf(os.Stderr, "synopsis %s: %s, %d rows (%.1f KiB) in %v\n",
					info.Name, info.GUS, info.Rows, float64(info.Bytes)/1024, time.Since(t0).Round(time.Millisecond))
			}
		}
	}

	opts := []gus.Option{gus.WithSeed(*seed), gus.WithConfidence(*level)}
	if *noSynopsis {
		opts = append(opts, gus.WithSynopses(false))
	}
	if *workers > 0 {
		opts = append(opts, gus.WithWorkers(*workers))
	}
	if *chebyshev {
		opts = append(opts, gus.WithInterval(gus.ChebyshevInterval))
	}
	if *subsample > 0 {
		opts = append(opts, gus.WithVarianceSubsampling(*subsample))
	}

	// The primary run always carries a trace: it is what activates the
	// variance diagnostics behind the CI-reliability grade, and tracing is
	// bit-identity-guaranteed not to perturb the estimate. The -prepare
	// re-execution and -exact runs stay untraced so the timings reflect a
	// single plain execution; the trace itself is only printed/persisted
	// when -explain or -trace-json asks for it.
	tr := &gus.Trace{}
	runOpts := append(opts[:len(opts):len(opts)], gus.WithTrace(tr))

	argVals, err := parseArgs(*argsFlag)
	if err != nil {
		fail(err)
	}
	var st *gus.Stmt
	if *prepare || len(argVals) > 0 {
		t0 := time.Now()
		st, err = db.Prepare(*query)
		if err != nil {
			fail(err)
		}
		if *prepare {
			fmt.Printf("prepared in %v (%d parameter(s))\n", time.Since(t0).Round(time.Microsecond), st.NumParams())
		}
	}
	// run/runExact route through the prepared statement when one exists.
	stmtArgs := func(opts []gus.Option) []any {
		all := append([]any{}, argVals...)
		for _, o := range opts {
			all = append(all, o)
		}
		return all
	}
	run := func(opts []gus.Option) (*gus.Result, error) {
		if st != nil {
			return st.Query(context.Background(), stmtArgs(opts)...)
		}
		return db.Query(*query, opts...)
	}
	runExact := func() (*gus.Result, error) {
		if st != nil {
			return st.Exact(context.Background(), stmtArgs(nil)...)
		}
		return db.Exact(*query)
	}

	if *progressive {
		stream := func(popts []gus.Option) (<-chan gus.Update, func() error) {
			if st != nil {
				return st.QueryProgressive(context.Background(), stmtArgs(popts)...)
			}
			return db.QueryProgressive(context.Background(), *query, popts...)
		}
		runProgressive(stream, runExact, runOpts, *target, *deadline, *maxFrac, *waveRows, *level, *exact)
		emitTrace(tr, *explain, *traceJSON)
		return
	}
	t0 := time.Now()
	res, err := run(runOpts)
	if err != nil {
		fail(err)
	}
	if *prepare {
		first := time.Since(t0)
		t1 := time.Now()
		if _, err := run(opts); err != nil {
			fail(err)
		}
		fmt.Printf("executed in %v; re-executed in %v (parse/plan skipped)\n",
			first.Round(time.Microsecond), time.Since(t1).Round(time.Microsecond))
	}
	if *verbose {
		fmt.Println("plan:")
		fmt.Print(indent(res.PlanText))
		fmt.Println("rewrite trace:")
		fmt.Print(indent(res.TraceText))
		fmt.Println("top GUS:", res.GUSText)
		fmt.Println()
	}
	fmt.Printf("sample rows: %d\n", res.SampleRows)
	for _, v := range res.Values {
		approx := ""
		if v.Approximate {
			approx = " (delta-method approximation)"
		}
		fmt.Printf("%s [%s] = %.6g\n", v.Name, v.Kind, v.Value)
		fmt.Printf("  estimate %.6g ± %.6g; %.0f%% CI [%.6g, %.6g]%s\n",
			v.Estimate, v.StdErr, *level*100, v.CILow, v.CIHigh, approx)
		if v.Reliability != "" {
			fmt.Printf("  CI reliability %s (rse of variance estimate %.2g)\n", v.Reliability, v.VarianceRSE)
		}
	}
	if *exact {
		ex, err := runExact()
		if err != nil {
			fail(err)
		}
		for i, v := range ex.Values {
			fmt.Printf("exact %s = %.6g (estimate rel.err %.4f%%)\n",
				v.Name, v.Value, 100*relErr(res.Values[i].Estimate, v.Value))
		}
	}
	emitTrace(tr, *explain, *traceJSON)
}

// emitTrace prints and/or persists the execution trace collected from the
// primary run. No-op when tracing was not requested.
func emitTrace(tr *gus.Trace, explain bool, jsonPath string) {
	if tr == nil {
		return
	}
	if explain {
		fmt.Println("execution trace:")
		fmt.Print(indent(tr.Format()))
	}
	if jsonPath != "" {
		b, err := tr.JSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", jsonPath)
	}
}

// parseArgs splits a comma-separated -args list into bindable values,
// inferring int64, then float64, then string for each element.
// parseSynopsisSpec parses -synopsis table:rate[:seed] into a spec named
// <table>_syn.
func parseSynopsisSpec(s string) (gus.SynopsisSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return gus.SynopsisSpec{}, fmt.Errorf("-synopsis wants table:rate[:seed], got %q", s)
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return gus.SynopsisSpec{}, fmt.Errorf("-synopsis rate %q: %w", parts[1], err)
	}
	spec := gus.SynopsisSpec{Name: parts[0] + "_syn", Table: parts[0], Rate: rate}
	if len(parts) == 3 {
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return gus.SynopsisSpec{}, fmt.Errorf("-synopsis seed %q: %w", parts[2], err)
		}
		spec.Seed = seed
	}
	return spec, nil
}

func parseArgs(s string) ([]any, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]any, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if v, err := strconv.ParseInt(p, 10, 64); err == nil {
			out = append(out, v)
			continue
		}
		if v, err := strconv.ParseFloat(p, 64); err == nil {
			out = append(out, v)
			continue
		}
		out = append(out, strings.Trim(p, "'"))
	}
	return out, nil
}

// runProgressive streams the query as online aggregation, printing one
// line per wave and exiting when the stream's stop condition fires.
func runProgressive(stream func([]gus.Option) (<-chan gus.Update, func() error), runExact func() (*gus.Result, error), opts []gus.Option, target float64, deadline time.Duration, maxFrac float64, waveRows int, level float64, exact bool) {
	if target > 0 {
		opts = append(opts, gus.WithTargetRelativeCI(target))
	}
	if deadline > 0 {
		opts = append(opts, gus.WithDeadline(deadline))
	}
	if maxFrac > 0 {
		opts = append(opts, gus.WithMaxFraction(maxFrac))
	}
	if waveRows > 0 {
		opts = append(opts, gus.WithWaveRows(waveRows))
	}
	ch, wait := stream(opts)
	var last gus.Update
	for u := range ch {
		last = u
		for _, v := range u.Values {
			rel := ""
			if v.RelHalfWidth < 1e6 {
				rel = fmt.Sprintf("  rel ±%.3f%%", 100*v.RelHalfWidth)
			}
			grade := ""
			if v.Reliability != "" {
				grade = "  CI-grade " + v.Reliability
			}
			fmt.Printf("wave %3d  %6.2f%% scanned  %8d sample rows  %s [%s] = %.6g  %.0f%% CI [%.6g, %.6g]%s%s\n",
				u.Wave, 100*u.FractionScanned, u.SampleRows, v.Name, v.Kind, v.Value,
				level*100, v.CILow, v.CIHigh, rel, grade)
		}
	}
	if err := wait(); err != nil {
		fail(err)
	}
	fmt.Printf("stopped: %s (scanned %.2f%% of the data)\n", last.Reason, 100*last.FractionScanned)
	if exact {
		ex, err := runExact()
		if err != nil {
			fail(err)
		}
		for i, v := range ex.Values {
			if i >= len(last.Values) {
				break
			}
			fmt.Printf("exact %s = %.6g (estimate rel.err %.4f%%)\n",
				v.Name, v.Value, 100*relErr(last.Values[i].Estimate, v.Value))
		}
	}
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	if truth < 0 {
		truth = -truth
	}
	return d / truth
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gusquery:", err)
	os.Exit(1)
}
