// Command gusserve exposes a gus database as a long-lived HTTP/JSON
// service, driving the parallel partitioned engine from concurrent
// clients. Tables come from CSV files (-data, gusgen's format) or from
// the in-process TPC-H generator (-gen).
//
//	gusserve -gen 0.01 -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM lineitem TABLESAMPLE (10 PERCENT)","seed":7}'
//
// Endpoints:
//
//	POST /query   — estimate a SQL aggregate query (body: QueryRequest)
//	GET  /tables  — registered tables and cardinalities
//	GET  /healthz — liveness probe
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	gus "github.com/sampling-algebra/gus"
)

// QueryRequest is the POST /query body. Zero values select defaults.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Seed fixes the sampling RNG (default 1; 0 is a valid seed and is
	// honored). Identical requests return identical responses, regardless
	// of server parallelism.
	Seed *uint64 `json:"seed"`
	// Confidence is the two-sided CI level (default 0.95).
	Confidence float64 `json:"confidence"`
	// Chebyshev selects distribution-free intervals.
	Chebyshev bool `json:"chebyshev"`
	// Subsample activates §7 variance sub-sampling at about this many rows.
	Subsample int `json:"subsample"`
	// Workers overrides the server's worker-pool width for this query.
	Workers int `json:"workers"`
	// Exact additionally runs the query with sampling stripped (slow on
	// large data; for validation).
	Exact bool `json:"exact"`
	// Verbose includes the plan, rewrite trace and top GUS text.
	Verbose bool `json:"verbose"`
}

// ValueResponse mirrors gus.Value.
type ValueResponse struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind"`
	Value       float64  `json:"value"`
	Estimate    float64  `json:"estimate"`
	StdErr      float64  `json:"stdErr"`
	CILow       float64  `json:"ciLow"`
	CIHigh      float64  `json:"ciHigh"`
	Approximate bool     `json:"approximate,omitempty"`
	Exact       *float64 `json:"exact,omitempty"`
}

// GroupResponse is one GROUP BY bucket.
type GroupResponse struct {
	Key    string          `json:"key"`
	Values []ValueResponse `json:"values"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	SampleRows int             `json:"sampleRows"`
	ElapsedMS  float64         `json:"elapsedMs"`
	Values     []ValueResponse `json:"values,omitempty"`
	Groups     []GroupResponse `json:"groups,omitempty"`
	PlanText   string          `json:"planText,omitempty"`
	TraceText  string          `json:"traceText,omitempty"`
	GUSText    string          `json:"gusText,omitempty"`
}

type server struct {
	db *gus.DB
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "directory of CSV tables (from gusgen)")
		genSF   = flag.Float64("gen", 0, "generate TPC-H data at this scale factor instead of loading")
		genSeed = flag.Uint64("genseed", 42, "TPC-H generator seed")
		workers = flag.Int("workers", 0, "default worker-pool width per query (0 = GOMAXPROCS)")
	)
	flag.Parse()

	db := gus.Open()
	switch {
	case *genSF > 0:
		if err := db.AttachTPCH(*genSF, *genSeed); err != nil {
			log.Fatalf("gusserve: %v", err)
		}
	case *dataDir != "":
		paths, err := filepath.Glob(filepath.Join(*dataDir, "*.csv"))
		if err != nil {
			log.Fatalf("gusserve: %v", err)
		}
		if len(paths) == 0 {
			log.Fatalf("gusserve: no *.csv files in %s", *dataDir)
		}
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".csv")
			if err := db.LoadCSV(name, p); err != nil {
				log.Fatalf("gusserve: %v", err)
			}
			log.Printf("loaded table %s", name)
		}
	default:
		log.Fatal("gusserve: provide -data DIR or -gen SF")
	}
	db.SetWorkers(*workers)

	s := &server{db: db}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Queries are intentionally long-running, so the write timeout is
		// generous; idle keep-alive connections are reaped much sooner.
		WriteTimeout: 10 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	go func() {
		log.Printf("gusserve listening on %s (tables: %s)", *addr, strings.Join(db.TableNames(), ", "))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gusserve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("gusserve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("gusserve: shutdown: %v", err)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing sql"))
		return
	}
	opts := []gus.Option{}
	if req.Seed != nil {
		opts = append(opts, gus.WithSeed(*req.Seed))
	}
	if req.Confidence != 0 {
		opts = append(opts, gus.WithConfidence(req.Confidence))
	}
	if req.Chebyshev {
		opts = append(opts, gus.WithInterval(gus.ChebyshevInterval))
	}
	if req.Subsample > 0 {
		opts = append(opts, gus.WithVarianceSubsampling(req.Subsample))
	}
	if req.Workers > 0 {
		opts = append(opts, gus.WithWorkers(req.Workers))
	}

	start := time.Now()
	res, err := s.db.Query(req.SQL, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{
		SampleRows: res.SampleRows,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.Verbose {
		resp.PlanText, resp.TraceText, resp.GUSText = res.PlanText, res.TraceText, res.GUSText
	}
	var exact *gus.Result
	if req.Exact {
		if exact, err = s.db.Exact(req.SQL, opts...); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("exact: %w", err))
			return
		}
	}
	for i, v := range res.Values {
		rv := toValueResponse(v)
		if exact != nil && i < len(exact.Values) {
			ev := exact.Values[i].Value
			rv.Exact = &ev
		}
		resp.Values = append(resp.Values, rv)
	}
	// Exact answers for grouped queries match by group key: the sampled
	// run can miss groups entirely and the two runs may order differently,
	// so positional matching would attach wrong truths.
	exactGroups := map[string][]gus.Value{}
	if exact != nil {
		for _, g := range exact.Groups {
			exactGroups[g.Key] = g.Values
		}
	}
	for _, g := range res.Groups {
		gr := GroupResponse{Key: g.Key}
		ev := exactGroups[g.Key]
		for i, v := range g.Values {
			rv := toValueResponse(v)
			if i < len(ev) {
				x := ev[i].Value
				rv.Exact = &x
			}
			gr.Values = append(gr.Values, rv)
		}
		resp.Groups = append(resp.Groups, gr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	type tableInfo struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	var out []tableInfo
	for _, name := range s.db.TableNames() {
		n, err := s.db.TableLen(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, tableInfo{Name: name, Rows: n})
	}
	writeJSON(w, http.StatusOK, out)
}

func toValueResponse(v gus.Value) ValueResponse {
	return ValueResponse{
		Name:        v.Name,
		Kind:        v.Kind,
		Value:       v.Value,
		Estimate:    v.Estimate,
		StdErr:      v.StdErr,
		CILow:       v.CILow,
		CIHigh:      v.CIHigh,
		Approximate: v.Approximate,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("gusserve: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
