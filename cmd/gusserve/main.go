// Command gusserve exposes a gus database as a long-lived HTTP/JSON
// service, driving the parallel partitioned engine from concurrent
// clients. Tables come from files written by gusgen — -data opens every
// *.gusseg columnar segment in the directory (mmap, no parse) or, when
// there are none, loads every *.csv — or from the in-process TPC-H
// generator (-gen).
//
//	gusserve -gen 0.01 -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM lineitem TABLESAMPLE (10 PERCENT)","seed":7}'
//
// Endpoints:
//
//	POST /query        — estimate a SQL aggregate query (body: QueryRequest)
//	POST /query/stream — online aggregation: NDJSON stream of refining
//	                     estimates, one line per partition wave, honoring
//	                     stop conditions and client disconnect
//	                     (body: StreamRequest)
//	GET  /tables       — registered tables: rows, column schema, storage
//	                     mode (resident heap vs mmap segment)
//	GET  /accuracy     — CI-calibration report: empirical coverage of the
//	                     estimator's confidence intervals (Wilson-scored,
//	                     overall and per query shape), fed by the shadow
//	                     auditor (-audit) and ObserveAccuracy
//	GET  /metrics      — Prometheus text exposition: every DB-level gus_*
//	                     metric (latency, rows scanned, sample fractions,
//	                     plan-cache hit rate, per-shape counters,
//	                     progressive stop reasons) plus the server's
//	                     gusserve_* HTTP counters; always on
//	GET  /healthz      — liveness probe
//	GET  /debug/…      — net/http/pprof profiles and the expvar page;
//	                     only with -pprof
//
// Every query request gets an ID (q000001, …) that appears in the
// structured request log line, the JSON response — including 4xx/5xx
// error bodies — each NDJSON stream frame, and — for EXPLAIN ANALYZE —
// the rendered trace.
//
// With -audit the server runs the shadow auditor: it periodically replays
// hot query shapes sampled-and-exact in the background (scan traffic
// capped by -audit-fraction per minute) and records whether each claimed
// confidence interval covered the exact answer; the results appear on
// /accuracy and as gus_audit_*/gus_ci_coverage_ratio metrics.
//
// Both query endpoints are wired to the request context: when the client
// disconnects, the engine stops scanning at the next partition boundary.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	gus "github.com/sampling-algebra/gus"
	"github.com/sampling-algebra/gus/internal/obs"
	"github.com/sampling-algebra/gus/internal/sqlparse"
)

// serverMetrics holds the HTTP-layer counters (the DB keeps its own
// registry, exposed alongside on /metrics). These replace the former
// gusserve_* expvars, which only existed behind -pprof.
type serverMetrics struct {
	reg      *obs.Registry
	queries  *obs.Counter
	rows     *obs.Counter
	requests *obs.CounterVec
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:      reg,
		queries:  reg.Counter("gusserve_queries_served_total", "Query and stream requests answered (any outcome)."),
		rows:     reg.Counter("gusserve_rows_scanned_total", "Sample rows produced by served queries."),
		requests: reg.CounterVec("gusserve_http_requests_total", "HTTP requests by endpoint.", "endpoint"),
	}
}

// QueryRequest is the POST /query body. Zero values select defaults.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Args bind the SQL's positional `?` placeholders, in order: JSON
	// numbers without a fractional part bind as integers, others as
	// floats, strings as strings. The statement is served from the
	// server's plan cache, so repeated shapes skip parse/plan.
	Args []any `json:"args"`
	// Seed fixes the sampling RNG (default 1; 0 is a valid seed and is
	// honored). Identical requests return identical responses, regardless
	// of server parallelism.
	Seed *uint64 `json:"seed"`
	// Confidence is the two-sided CI level (default 0.95).
	Confidence float64 `json:"confidence"`
	// Chebyshev selects distribution-free intervals.
	Chebyshev bool `json:"chebyshev"`
	// Subsample activates §7 variance sub-sampling at about this many rows.
	Subsample int `json:"subsample"`
	// Workers overrides the server's worker-pool width for this query.
	Workers int `json:"workers"`
	// Exact additionally runs the query with sampling stripped (slow on
	// large data; for validation).
	Exact bool `json:"exact"`
	// Verbose includes the plan, rewrite trace and top GUS text.
	Verbose bool `json:"verbose"`
}

// options translates the request into query options.
func (req QueryRequest) options() []gus.Option {
	opts := []gus.Option{}
	if req.Seed != nil {
		opts = append(opts, gus.WithSeed(*req.Seed))
	}
	if req.Confidence != 0 {
		opts = append(opts, gus.WithConfidence(req.Confidence))
	}
	if req.Chebyshev {
		opts = append(opts, gus.WithInterval(gus.ChebyshevInterval))
	}
	if req.Subsample > 0 {
		opts = append(opts, gus.WithVarianceSubsampling(req.Subsample))
	}
	if req.Workers > 0 {
		opts = append(opts, gus.WithWorkers(req.Workers))
	}
	return opts
}

// StreamRequest is the POST /query/stream body: a QueryRequest (Exact and
// Verbose are ignored) plus online-aggregation stop conditions. With no
// stop condition set the stream runs to the complete scan.
type StreamRequest struct {
	QueryRequest
	// TargetRelCI stops once every item's CI half-width is at most this
	// fraction of its estimate (e.g. 0.01 for ±1%).
	TargetRelCI float64 `json:"targetRelCi"`
	// DeadlineMS stops at the first wave boundary after this many
	// milliseconds.
	DeadlineMS float64 `json:"deadlineMs"`
	// MaxFraction stops once this fraction of the data has been scanned.
	MaxFraction float64 `json:"maxFraction"`
	// WaveRows sets the input rows per wave (0 = default).
	WaveRows int `json:"waveRows"`
}

// StreamValue is one SELECT item inside a stream update. Estimator fields
// are pointers: null until the item is estimable (e.g. an AVG before any
// row survived), and relHalfWidth is null while the estimate is zero.
type StreamValue struct {
	Name         string   `json:"name"`
	Kind         string   `json:"kind"`
	Value        *float64 `json:"value"`
	Estimate     *float64 `json:"estimate"`
	StdErr       *float64 `json:"stdErr"`
	CILow        *float64 `json:"ciLow"`
	CIHigh       *float64 `json:"ciHigh"`
	Approximate  bool     `json:"approximate,omitempty"`
	RelHalfWidth *float64 `json:"relHalfWidth"`
	// Reliability grades the CI's own trustworthiness (A–D) from the
	// variance diagnostics; varianceRse is the relative standard error
	// of the variance estimate itself.
	Reliability string   `json:"reliability,omitempty"`
	VarianceRSE *float64 `json:"varianceRse,omitempty"`
}

// StreamUpdate is one NDJSON line of the /query/stream response. The
// top-level estimator fields mirror values[0].
type StreamUpdate struct {
	QueryID         string        `json:"queryId,omitempty"`
	ExplainText     string        `json:"explainText,omitempty"`
	Wave            int           `json:"wave"`
	FractionScanned float64       `json:"fractionScanned"`
	RowsScanned     int           `json:"rowsScanned"`
	SampleRows      int           `json:"sampleRows"`
	Final           bool          `json:"final"`
	Done            bool          `json:"done"`
	Reason          string        `json:"reason,omitempty"`
	ElapsedMS       float64       `json:"elapsedMs"`
	Estimate        *float64      `json:"estimate"`
	StdErr          *float64      `json:"stdErr"`
	CILow           *float64      `json:"ciLow"`
	CIHigh          *float64      `json:"ciHigh"`
	Values          []StreamValue `json:"values"`
	Error           string        `json:"error,omitempty"`
}

// ValueResponse mirrors gus.Value.
type ValueResponse struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind"`
	Value       float64  `json:"value"`
	Estimate    float64  `json:"estimate"`
	StdErr      float64  `json:"stdErr"`
	CILow       float64  `json:"ciLow"`
	CIHigh      float64  `json:"ciHigh"`
	Approximate bool     `json:"approximate,omitempty"`
	// Reliability grades the CI's own trustworthiness (A–D) from the
	// variance diagnostics; varianceRse is the relative standard error
	// of the variance estimate itself. Always present on /query results
	// (the server traces every request), absent on exact replays.
	Reliability string   `json:"reliability,omitempty"`
	VarianceRSE *float64 `json:"varianceRse,omitempty"`
	Exact       *float64 `json:"exact,omitempty"`
}

// GroupResponse is one GROUP BY bucket.
type GroupResponse struct {
	Key    string          `json:"key"`
	Values []ValueResponse `json:"values"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	QueryID    string          `json:"queryId"`
	SampleRows int             `json:"sampleRows"`
	ElapsedMS  float64         `json:"elapsedMs"`
	Values     []ValueResponse `json:"values,omitempty"`
	Groups     []GroupResponse `json:"groups,omitempty"`
	PlanText   string          `json:"planText,omitempty"`
	TraceText  string          `json:"traceText,omitempty"`
	GUSText    string          `json:"gusText,omitempty"`
	// ExplainText is the rendered execution trace, present for EXPLAIN
	// ANALYZE statements.
	ExplainText string `json:"explainText,omitempty"`
}

type server struct {
	db      *gus.DB
	metrics *serverMetrics
	nextID  atomic.Uint64
}

func newServer(db *gus.DB) *server {
	return &server{db: db, metrics: newServerMetrics()}
}

// queryID mints the per-request ID that ties the log line, the response
// and the trace together.
func (s *server) queryID() string {
	return fmt.Sprintf("q%06d", s.nextID.Add(1))
}

// shapeKey is the normalized statement text — the same key the DB's plan
// cache and per-shape metrics use — truncated for log lines.
func shapeKey(sql string) string {
	shape := sqlparse.Normalize(sql)
	if len(shape) > 120 {
		shape = shape[:117] + "..."
	}
	return shape
}

// sampleRowsOf tolerates the nil result of a failed query.
func sampleRowsOf(res *gus.Result) int {
	if res == nil {
		return 0
	}
	return res.SampleRows
}

// logQuery emits the structured request log line.
func logQuery(endpoint, id, sql string, elapsed time.Duration, sampleRows int, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	if err != nil {
		log.Printf("%s id=%s shape=%q ms=%.3f outcome=%s err=%q",
			endpoint, id, shapeKey(sql), float64(elapsed.Microseconds())/1000, outcome, err.Error())
		return
	}
	log.Printf("%s id=%s shape=%q ms=%.3f outcome=%s sampleRows=%d",
		endpoint, id, shapeKey(sql), float64(elapsed.Microseconds())/1000, outcome, sampleRows)
}

// mux wires the server's routes. /metrics is always on; the pprof and
// expvar debug surface stays opt-in.
func (s *server) mux(pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query/stream", s.handleQueryStream)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/accuracy", s.handleAccuracy)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if pprofOn {
		registerDebug(mux)
	}
	return mux
}

// handleAccuracy serves the DB's CI-calibration report: empirical
// coverage of claimed confidence intervals, overall and per shape, plus
// the shadow auditor's counters when -audit is on.
func (s *server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("GET only"))
		return
	}
	s.metrics.requests.With("/accuracy").Inc()
	writeJSON(w, http.StatusOK, s.db.AccuracySnapshot())
}

// handleMetrics serves the Prometheus text exposition: the DB's gus_*
// registry followed by the server's gusserve_* counters.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("GET only"))
		return
	}
	s.metrics.requests.With("/metrics").Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.db.WriteMetrics(w); err != nil {
		log.Printf("gusserve: write metrics: %v", err)
		return
	}
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		log.Printf("gusserve: write metrics: %v", err)
	}
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataDir = flag.String("data", "", "directory of CSV tables (from gusgen)")
		genSF   = flag.Float64("gen", 0, "generate TPC-H data at this scale factor instead of loading")
		genSeed = flag.Uint64("genseed", 42, "TPC-H generator seed")
		workers = flag.Int("workers", 0, "default worker-pool width per query (0 = GOMAXPROCS)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof and expvar counters under /debug/ (profiling aid; do not enable on untrusted networks)")

		auditOn       = flag.Bool("audit", false, "run the shadow auditor: replay hot query shapes sampled+exact in the background and track CI coverage on /accuracy")
		auditFraction = flag.Float64("audit-fraction", 0.5, "with -audit: cap audit scan traffic at this fraction of total table rows per minute")
		auditInterval = flag.Duration("audit-interval", 15*time.Second, "with -audit: pause between audit attempts")
	)
	flag.Parse()

	db := gus.Open()
	switch {
	case *genSF > 0:
		if err := db.AttachTPCH(*genSF, *genSeed); err != nil {
			log.Fatalf("gusserve: %v", err)
		}
	case *dataDir != "":
		segs, err := filepath.Glob(filepath.Join(*dataDir, "*"+gus.SegmentExt))
		if err != nil {
			log.Fatalf("gusserve: %v", err)
		}
		if len(segs) > 0 {
			if err := db.AttachSegmentDir(*dataDir); err != nil {
				log.Fatalf("gusserve: %v", err)
			}
			for _, info := range db.Tables() {
				log.Printf("attached segment table %s (%d rows)", info.Name, info.Rows)
			}
			if _, err := os.Stat(filepath.Join(*dataDir, gus.SynopsisManifest)); err == nil {
				if err := db.LoadSynopses(*dataDir); err != nil {
					log.Fatalf("gusserve: %v", err)
				}
				for _, info := range db.Synopses() {
					log.Printf("loaded synopsis %s: %s (%d rows)", info.Name, info.GUS, info.Rows)
				}
			}
			break
		}
		paths, err := filepath.Glob(filepath.Join(*dataDir, "*.csv"))
		if err != nil {
			log.Fatalf("gusserve: %v", err)
		}
		if len(paths) == 0 {
			log.Fatalf("gusserve: no *%s or *.csv files in %s", gus.SegmentExt, *dataDir)
		}
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".csv")
			if err := db.LoadCSV(name, p); err != nil {
				log.Fatalf("gusserve: %v", err)
			}
			log.Printf("loaded table %s", name)
		}
	default:
		log.Fatal("gusserve: provide -data DIR or -gen SF")
	}
	db.SetWorkers(*workers)
	if *auditOn {
		if err := db.EnableAuditor(gus.AuditorOptions{
			Interval:             *auditInterval,
			MaxFractionPerMinute: *auditFraction,
		}); err != nil {
			log.Fatalf("gusserve: %v", err)
		}
		defer db.DisableAuditor()
		log.Printf("gusserve: shadow auditor on (interval %s, %.2g of rows/min)", *auditInterval, *auditFraction)
	}

	s := newServer(db)
	if *pprofOn {
		log.Print("gusserve: /debug/pprof and /debug/vars enabled")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(*pprofOn),
		ReadHeaderTimeout: 5 * time.Second,
		// Queries are intentionally long-running, so the write timeout is
		// generous; idle keep-alive connections are reaped much sooner.
		WriteTimeout: 10 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	go func() {
		log.Printf("gusserve listening on %s (tables: %s)", *addr, strings.Join(db.TableNames(), ", "))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gusserve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("gusserve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("gusserve: shutdown: %v", err)
	}
}

// decodeArgs converts JSON argument values into bindable Go values:
// json.Number → int64 when integral, float64 otherwise; strings pass
// through; anything else (bool, null, nested) is rejected.
func decodeArgs(in []any) ([]any, error) {
	out := make([]any, len(in))
	for i, a := range in {
		switch x := a.(type) {
		case json.Number:
			if v, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
				out[i] = v
				continue
			}
			v, err := x.Float64()
			if err != nil {
				return nil, fmt.Errorf("args[%d]: bad number %q", i, x.String())
			}
			out[i] = v
		case string:
			out[i] = x
		default:
			return nil, fmt.Errorf("args[%d]: unsupported JSON type %T (bind numbers or strings)", i, a)
		}
	}
	return out, nil
}

// runRequest executes a request body through the DB's plan cache, binding
// req.Args when present — the server-side prepared-statement path. tr (may
// be nil) picks up the parse+plan span and the execution spans.
func (s *server) runRequest(ctx context.Context, req QueryRequest, exact bool, tr *gus.Trace) (*gus.Result, error) {
	st, err := s.db.PrepareCachedTrace(req.SQL, tr)
	if err != nil {
		return nil, err
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		return nil, err
	}
	for _, o := range req.options() {
		args = append(args, o)
	}
	if tr != nil {
		args = append(args, gus.Option(gus.WithTrace(tr)))
	}
	if exact {
		return st.Exact(ctx, args...)
	}
	return st.Query(ctx, args...)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("POST only"))
		return
	}
	// The ID is minted before the body is even parsed, so every error
	// response already carries the queryId the log line will show.
	qid := s.queryID()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, qid, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, qid, fmt.Errorf("missing sql"))
		return
	}
	s.metrics.requests.With("/query").Inc()
	// The trace carries the request ID into EXPLAIN ANALYZE output; it is
	// allocated per request, so concurrent queries never share one.
	tr := &gus.Trace{QueryID: qid}
	start := time.Now()
	res, err := s.runRequest(r.Context(), req, false, tr)
	s.metrics.queries.Inc()
	logQuery("query", qid, req.SQL, time.Since(start), sampleRowsOf(res), err)
	if err != nil {
		writeError(w, http.StatusBadRequest, qid, err)
		return
	}
	s.metrics.rows.Add(uint64(res.SampleRows))
	resp := QueryResponse{
		QueryID:     qid,
		SampleRows:  res.SampleRows,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		ExplainText: res.ExplainText,
	}
	if req.Verbose {
		resp.PlanText, resp.TraceText, resp.GUSText = res.PlanText, res.TraceText, res.GUSText
	}
	var exact *gus.Result
	if req.Exact {
		if exact, err = s.runRequest(r.Context(), req, true, nil); err != nil {
			writeError(w, http.StatusBadRequest, qid, fmt.Errorf("exact: %w", err))
			return
		}
	}
	for i, v := range res.Values {
		rv := toValueResponse(v)
		if exact != nil && i < len(exact.Values) {
			ev := exact.Values[i].Value
			rv.Exact = &ev
		}
		resp.Values = append(resp.Values, rv)
	}
	// Exact answers for grouped queries match by group key: the sampled
	// run can miss groups entirely and the two runs may order differently,
	// so positional matching would attach wrong truths.
	exactGroups := map[string][]gus.Value{}
	if exact != nil {
		for _, g := range exact.Groups {
			exactGroups[g.Key] = g.Values
		}
	}
	for _, g := range res.Groups {
		gr := GroupResponse{Key: g.Key}
		ev := exactGroups[g.Key]
		for i, v := range g.Values {
			rv := toValueResponse(v)
			if i < len(ev) {
				x := ev[i].Value
				rv.Exact = &x
			}
			gr.Values = append(gr.Values, rv)
		}
		resp.Groups = append(resp.Groups, gr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream runs a query as online aggregation and streams one
// NDJSON update per partition wave, flushing each line immediately. The
// stream is driven by the request context: a disconnected client cancels
// the query at the next wave boundary.
func (s *server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("POST only"))
		return
	}
	qid := s.queryID()
	var req StreamRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, qid, fmt.Errorf("bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, qid, fmt.Errorf("missing sql"))
		return
	}
	opts := req.options()
	if req.TargetRelCI > 0 {
		opts = append(opts, gus.WithTargetRelativeCI(req.TargetRelCI))
	}
	if req.DeadlineMS > 0 {
		opts = append(opts, gus.WithDeadline(time.Duration(req.DeadlineMS*float64(time.Millisecond))))
	}
	if req.MaxFraction > 0 {
		opts = append(opts, gus.WithMaxFraction(req.MaxFraction))
	}
	if req.WaveRows > 0 {
		opts = append(opts, gus.WithWaveRows(req.WaveRows))
	}

	s.metrics.requests.With("/query/stream").Inc()
	tr := &gus.Trace{QueryID: qid}
	st, err := s.db.PrepareCachedTrace(req.SQL, tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, qid, err)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		writeError(w, http.StatusBadRequest, qid, err)
		return
	}
	for _, o := range opts {
		args = append(args, o)
	}
	args = append(args, gus.Option(gus.WithTrace(tr)))
	start := time.Now()
	ch, wait := st.QueryProgressive(r.Context(), args...)
	s.metrics.queries.Inc()

	// Hold the status line until the first update: a stream that dies
	// before producing anything (bad SQL, unknown table, an unsupported
	// mode like GROUP BY) gets a real 4xx with a plain JSON error, exactly
	// like /query — 422 when the query is valid but the mode cannot serve
	// it (gus.ErrUnsupported), 400 otherwise. Never a 500: these are all
	// client-fixable.
	first, ok := <-ch
	if !ok {
		err := wait()
		logQuery("stream", qid, req.SQL, time.Since(start), 0, err)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, gus.ErrUnsupported) {
				status = http.StatusUnprocessableEntity
			}
			writeError(w, status, qid, err)
			return
		}
		writeError(w, http.StatusInternalServerError, qid, fmt.Errorf("stream produced no updates"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	lastSample := 0
	for u, ok := first, true; ok; u, ok = <-ch {
		// Same unit as /query: sample rows the query produced so far.
		s.metrics.rows.Add(uint64(u.SampleRows - lastSample))
		lastSample = u.SampleRows
		if err := enc.Encode(toStreamUpdate(u, qid, start)); err != nil {
			// Client is gone; wait() below cancels the producer, so no
			// further waves are scanned for a dead connection.
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	err = wait()
	logQuery("stream", qid, req.SQL, time.Since(start), lastSample, err)
	if err != nil && r.Context().Err() == nil {
		// Mid-stream terminal error with the client still there: report
		// it as a final NDJSON line — the status line is long gone.
		if encErr := enc.Encode(StreamUpdate{QueryID: qid, Error: err.Error()}); encErr == nil && flusher != nil {
			flusher.Flush()
		}
	}
}

// fptr boxes finite floats and maps NaN/±Inf (not representable in JSON)
// to null.
func fptr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func toStreamUpdate(u gus.Update, qid string, start time.Time) StreamUpdate {
	out := StreamUpdate{
		QueryID:         qid,
		ExplainText:     u.ExplainText,
		Wave:            u.Wave,
		FractionScanned: u.FractionScanned,
		RowsScanned:     u.RowsScanned,
		SampleRows:      u.SampleRows,
		Final:           u.Final,
		Done:            u.Done,
		Reason:          u.Reason,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000,
		Estimate:        fptr(u.Estimate),
		StdErr:          fptr(u.StdErr),
		CILow:           fptr(u.CILow),
		CIHigh:          fptr(u.CIHigh),
	}
	for _, v := range u.Values {
		out.Values = append(out.Values, StreamValue{
			Name:         v.Name,
			Kind:         v.Kind,
			Value:        fptr(v.Value),
			Estimate:     fptr(v.Estimate),
			StdErr:       fptr(v.StdErr),
			CILow:        fptr(v.CILow),
			CIHigh:       fptr(v.CIHigh),
			Approximate:  v.Approximate,
			RelHalfWidth: fptr(v.RelHalfWidth),
			Reliability:  v.Reliability,
			VarianceRSE:  fptr(v.VarianceRSE),
		})
	}
	return out
}

func (s *server) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("GET only"))
		return
	}
	type columnInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type synopsisInfo struct {
		Name       string  `json:"name"`
		GUS        string  `json:"gus"`
		Rate       float64 `json:"rate"`
		MinRate    float64 `json:"min_rate"`
		Rows       int     `json:"rows"`
		SourceRows int     `json:"source_rows"`
		Stale      bool    `json:"stale"`
		Bytes      int64   `json:"bytes"`
		Generation uint64  `json:"generation"`
	}
	type tableInfo struct {
		Name     string         `json:"name"`
		Rows     int            `json:"rows"`
		Columns  []columnInfo   `json:"columns"`
		Storage  string         `json:"storage"`
		Synopses []synopsisInfo `json:"synopses,omitempty"`
	}
	out := []tableInfo{}
	for _, info := range s.db.Tables() {
		ti := tableInfo{Name: info.Name, Rows: info.Rows, Storage: info.Storage}
		for _, c := range info.Columns {
			ti.Columns = append(ti.Columns, columnInfo{Name: c.Name, Type: columnTypeName(c.Type)})
		}
		for _, sy := range info.Synopses {
			ti.Synopses = append(ti.Synopses, synopsisInfo{
				Name:       sy.Name,
				GUS:        sy.GUS,
				Rate:       sy.Rate,
				MinRate:    sy.MinRate,
				Rows:       sy.Rows,
				SourceRows: sy.SourceRows,
				Stale:      sy.Stale,
				Bytes:      sy.Bytes,
				Generation: sy.Generation,
			})
		}
		out = append(out, ti)
	}
	writeJSON(w, http.StatusOK, out)
}

// columnTypeName renders a schema column type for the /tables response.
func columnTypeName(t gus.ColumnType) string {
	switch t {
	case gus.Int:
		return "int"
	case gus.Float:
		return "float"
	default:
		return "string"
	}
}

func toValueResponse(v gus.Value) ValueResponse {
	out := ValueResponse{
		Name:        v.Name,
		Kind:        v.Kind,
		Value:       v.Value,
		Estimate:    v.Estimate,
		StdErr:      v.StdErr,
		CILow:       v.CILow,
		CIHigh:      v.CIHigh,
		Approximate: v.Approximate,
		Reliability: v.Reliability,
	}
	if v.Reliability != "" {
		out.VarianceRSE = fptr(v.VarianceRSE)
	}
	return out
}

// registerDebug mounts the net/http/pprof handlers and the expvar page on
// the server's own mux (it never uses http.DefaultServeMux).
func registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("gusserve: encode response: %v", err)
	}
}

// writeError renders a JSON error body. qid ties the failure back to the
// request log line; it is "" (and omitted) only for failures that happen
// before a request ID exists — wrong method, non-query endpoints.
func writeError(w http.ResponseWriter, status int, qid string, err error) {
	body := map[string]string{"error": err.Error()}
	if qid != "" {
		body["queryId"] = qid
	}
	writeJSON(w, status, body)
}
