package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	gus "github.com/sampling-algebra/gus"
)

// TestTablesGolden locks the user-visible /tables JSON against
// map-iteration nondeterminism: tables arrive sorted by name and each
// table's synopses sorted by name, no matter what order they were
// created in, and repeated GETs are byte-identical. This is the
// behavioral counterpart of gusvet's determinism analyzer for the HTTP
// surface.
func TestTablesGolden(t *testing.T) {
	db := gus.Open()
	// Create tables and synopses deliberately out of alphabetical order.
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tb, err := db.CreateTable(name,
			gus.Column{Name: "k", Type: gus.Int},
			gus.Column{Name: "v", Type: gus.Float},
		)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := tb.Insert(i, float64(i)+0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, spec := range []gus.SynopsisSpec{
		{Name: "z_half", Table: "alpha", Rate: 0.5, Seed: 1},
		{Name: "a_tenth", Table: "alpha", Rate: 0.1, Seed: 2},
		{Name: "m_quarter", Table: "zeta", Rate: 0.25, Seed: 3},
	} {
		if err := db.CreateSynopsis(spec); err != nil {
			t.Fatal(err)
		}
	}
	s := newServer(db)

	get := func() string {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/tables", nil)
		rec := httptest.NewRecorder()
		s.handleTables(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /tables: status %d", rec.Code)
		}
		return rec.Body.String()
	}

	first := get()
	for i := 0; i < 8; i++ {
		if got := get(); got != first {
			t.Fatalf("GET /tables not byte-identical across calls\n--- call %d ---\n%s\n--- first ---\n%s", i, got, first)
		}
	}

	// The decoded structure confirms the sort the bytes imply.
	tables := getTables(t, s)
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3: %+v", len(tables), tables)
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if tables[i].Name != want {
			t.Fatalf("tables[%d] = %q, want %q (sorted order)", i, tables[i].Name, want)
		}
	}
	syns := db.Synopses()
	if len(syns) != 3 {
		t.Fatalf("got %d synopses, want 3", len(syns))
	}
	for i, want := range []string{"a_tenth", "m_quarter", "z_half"} {
		if syns[i].Name != want {
			t.Fatalf("synopses[%d] = %q, want %q (sorted order)", i, syns[i].Name, want)
		}
	}
	// alpha's two synopses arrive name-sorted inside the table entry.
	aIdx, zIdx := strings.Index(first, `"a_tenth"`), strings.Index(first, `"z_half"`)
	if aIdx < 0 || zIdx < 0 || aIdx > zIdx {
		t.Fatalf("alpha's synopses out of name order in body:\n%s", first)
	}
}
