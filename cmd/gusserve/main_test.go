package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	gus "github.com/sampling-algebra/gus"
)

// testServer builds a server around a small in-memory database.
func testServer(t *testing.T) *server {
	t.Helper()
	db := gus.Open()
	tb, err := db.CreateTable("ev",
		gus.Column{Name: "cat", Type: gus.Int},
		gus.Column{Name: "v", Type: gus.Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if err := tb.Insert(i%12, float64(i%97)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return newServer(db)
}

func postQuery(t *testing.T, s *server, body string) (*httptest.ResponseRecorder, *QueryResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp QueryResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return rec, &resp
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	rec, resp := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s, COUNT(*) AS n FROM ev TABLESAMPLE (25 PERCENT)","seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Values) != 2 || len(resp.Groups) != 0 {
		t.Fatalf("shape: %d values, %d groups", len(resp.Values), len(resp.Groups))
	}
	if resp.Values[0].Name != "s" || resp.Values[1].Name != "n" {
		t.Fatalf("names %q, %q", resp.Values[0].Name, resp.Values[1].Name)
	}
	if resp.Values[0].Estimate <= 0 || resp.SampleRows == 0 {
		t.Fatal("empty estimate")
	}
	if resp.Values[0].Exact != nil {
		t.Fatal("exact attached without being requested")
	}

	// Identical requests return identical estimates (determinism through
	// the HTTP layer).
	_, resp2 := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s, COUNT(*) AS n FROM ev TABLESAMPLE (25 PERCENT)","seed":7}`)
	if resp2.Values[0].Estimate != resp.Values[0].Estimate {
		t.Fatal("same request, different estimate")
	}
}

// TestQueryExactValues: "exact": true must attach truths to flat values.
func TestQueryExactValues(t *testing.T) {
	s := testServer(t)
	rec, resp := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (50 PERCENT)","seed":3,"exact":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	v := resp.Values[0]
	if v.Exact == nil {
		t.Fatal("exact missing")
	}
	// Exact SUM(v) over the full table.
	var want float64
	for i := 0; i < 4000; i++ {
		want += float64(i%97) + 0.5
	}
	if *v.Exact != want {
		t.Fatalf("exact %v, want %v", *v.Exact, want)
	}
	if v.CILow > *v.Exact || *v.Exact > v.CIHigh {
		t.Logf("note: truth outside this seed's CI (possible, rare): [%v, %v] vs %v", v.CILow, v.CIHigh, *v.Exact)
	}
}

// TestQueryExactGroups is the regression for the dropped grouped exact
// answers: every returned group must carry its own truth, matched by key.
func TestQueryExactGroups(t *testing.T) {
	s := testServer(t)
	rec, resp := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (40 PERCENT) GROUP BY cat","seed":5,"exact":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Groups) == 0 {
		t.Fatal("no groups")
	}
	// Per-category truth: rows i with i%12 == c contribute i%97 + 0.5.
	truth := map[string]float64{}
	for i := 0; i < 4000; i++ {
		truth[strconv.Itoa(i%12)] += float64(i%97) + 0.5
	}
	for _, g := range resp.Groups {
		if len(g.Values) != 1 {
			t.Fatalf("group %s: %d values", g.Key, len(g.Values))
		}
		v := g.Values[0]
		if v.Exact == nil {
			t.Fatalf("group %s: exact missing", g.Key)
		}
		if want := truth[g.Key]; *v.Exact != want {
			t.Fatalf("group %s: exact %v, want %v (mismatched by key?)", g.Key, *v.Exact, want)
		}
	}
	// Numeric GROUP BY keys arrive in numeric order.
	for i := 1; i < len(resp.Groups); i++ {
		if len(resp.Groups[i-1].Key) > len(resp.Groups[i].Key) ||
			(len(resp.Groups[i-1].Key) == len(resp.Groups[i].Key) && resp.Groups[i-1].Key >= resp.Groups[i].Key) {
			t.Fatalf("groups out of numeric order: %q before %q", resp.Groups[i-1].Key, resp.Groups[i].Key)
		}
	}
}

func TestQueryBadRequests(t *testing.T) {
	s := testServer(t)
	cases := map[string]string{
		"malformed json":  `{"sql": "SELECT`,
		"missing sql":     `{}`,
		"blank sql":       `{"sql":"   "}`,
		"bad sql":         `{"sql":"SELEKT broken"}`,
		"unknown table":   `{"sql":"SELECT COUNT(*) FROM nope"}`,
		"oversized body":  `{"sql":"` + strings.Repeat("x", 1<<20+100) + `"}`,
		"wrong body type": `[1,2,3]`,
	}
	for name, body := range cases {
		rec, _ := postQuery(t, s, body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
		var e map[string]string
		if err := json.NewDecoder(rec.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body missing (%v)", name, err)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", rec.Code)
	}
}

// tableRow mirrors the GET /tables response entry.
type tableRow struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Columns []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	} `json:"columns"`
	Storage string `json:"storage"`
}

func getTables(t *testing.T, s *server) []tableRow {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/tables", nil)
	rec := httptest.NewRecorder()
	s.handleTables(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /tables: status %d", rec.Code)
	}
	var tables []tableRow
	if err := json.NewDecoder(rec.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	return tables
}

func TestTablesEndpoint(t *testing.T) {
	s := testServer(t)
	tables := getTables(t, s)
	if len(tables) != 1 || tables[0].Name != "ev" || tables[0].Rows != 4000 {
		t.Fatalf("tables: %+v", tables)
	}
	if tables[0].Storage != "resident" {
		t.Errorf("storage = %q, want resident", tables[0].Storage)
	}
	cols := tables[0].Columns
	if len(cols) != 2 || cols[0].Name != "cat" || cols[0].Type != "int" ||
		cols[1].Name != "v" || cols[1].Type != "float" {
		t.Errorf("columns: %+v", cols)
	}

	post := httptest.NewRequest(http.MethodPost, "/tables", nil)
	rec := httptest.NewRecorder()
	s.handleTables(rec, post)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /tables: status %d, want 405", rec.Code)
	}
}

// TestTablesEndpointSegmentStorage: a server over a saved segment
// directory reports storage "segment" and serves the same queries.
func TestTablesEndpointSegmentStorage(t *testing.T) {
	src := testServer(t)
	dir := t.TempDir()
	if err := src.db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := gus.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := newServer(db)
	tables := getTables(t, s)
	if len(tables) != 1 || tables[0].Name != "ev" || tables[0].Rows != 4000 {
		t.Fatalf("tables: %+v", tables)
	}
	if tables[0].Storage != "segment" {
		t.Errorf("storage = %q, want segment", tables[0].Storage)
	}
	body := `{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (25 PERCENT)","seed":7}`
	rec, resp := postQuery(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	_, want := postQuery(t, src, body)
	if resp.Values[0].Estimate != want.Values[0].Estimate {
		t.Fatalf("segment estimate %v != resident %v", resp.Values[0].Estimate, want.Values[0].Estimate)
	}
}

// streamServer builds a server whose table spans several engine
// partitions (4096 rows each) — waves are whole partitions, so streaming
// tests need more than one.
func streamServer(t *testing.T) *server {
	t.Helper()
	db := gus.Open()
	tb, err := db.CreateTable("ev",
		gus.Column{Name: "cat", Type: gus.Int},
		gus.Column{Name: "v", Type: gus.Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := tb.Insert(i%12, float64(i%97)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return newServer(db)
}

// streamLines POSTs to /query/stream and splits the NDJSON response.
func streamLines(t *testing.T, s *server, body string) (*httptest.ResponseRecorder, []StreamUpdate) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query/stream", bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	s.handleQueryStream(rec, req)
	var ups []StreamUpdate
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		if line == "" {
			continue
		}
		var u StreamUpdate
		if err := json.Unmarshal([]byte(line), &u); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		ups = append(ups, u)
	}
	return rec, ups
}

func TestQueryStreamEndpoint(t *testing.T) {
	s := streamServer(t)
	rec, ups := streamLines(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (50 PERCENT)","seed":7,"waveRows":500}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if len(ups) < 2 {
		t.Fatalf("expected several waves, got %d lines", len(ups))
	}
	last := ups[len(ups)-1]
	if !last.Final || !last.Done || last.Reason != "complete" || last.FractionScanned != 1 {
		t.Fatalf("last line not a completed scan: %+v", last)
	}
	if last.Estimate == nil || *last.Estimate <= 0 {
		t.Fatalf("final estimate missing: %+v", last)
	}
	// Final line must agree with the one-shot endpoint bit for bit.
	_, one := postQuery(t, s, `{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (50 PERCENT)","seed":7}`)
	if *last.Estimate != one.Values[0].Estimate || *last.StdErr != one.Values[0].StdErr {
		t.Fatalf("stream final (%v ± %v) != one-shot (%v ± %v)",
			*last.Estimate, *last.StdErr, one.Values[0].Estimate, one.Values[0].StdErr)
	}
	for i, u := range ups {
		if u.Wave != i {
			t.Fatalf("wave numbering: line %d has wave %d", i, u.Wave)
		}
		if len(u.Values) != 1 || u.Values[0].Name != "s" {
			t.Fatalf("line %d shape: %+v", i, u)
		}
	}
}

func TestQueryStreamStopsOnTarget(t *testing.T) {
	s := streamServer(t)
	rec, ups := streamLines(t, s,
		`{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (90 PERCENT)","seed":3,"waveRows":256,"targetRelCi":0.2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	last := ups[len(ups)-1]
	if !last.Done {
		t.Fatalf("stream did not stop: %+v", last)
	}
	if last.Reason != "target-ci" && last.Reason != "complete" {
		t.Fatalf("unexpected reason %q", last.Reason)
	}
	if last.Reason == "target-ci" {
		if last.FractionScanned >= 1 {
			t.Fatal("target stop without early exit")
		}
		v := last.Values[0]
		if v.RelHalfWidth == nil || *v.RelHalfWidth > 0.2 {
			t.Fatalf("target not met: %+v", v)
		}
	}
}

func TestQueryStreamErrors(t *testing.T) {
	s := testServer(t)
	// Malformed body: straight 400.
	req := httptest.NewRequest(http.MethodPost, "/query/stream", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	s.handleQueryStream(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", rec.Code)
	}
	// Bad SQL fails before the first update, so the stream endpoint can
	// still answer with a real 400 — consistent with /query.
	req2 := httptest.NewRequest(http.MethodPost, "/query/stream", bytes.NewBufferString(`{"sql":"SELECT FROM nope"}`))
	rec2 := httptest.NewRecorder()
	s.handleQueryStream(rec2, req2)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("bad sql: status %d, want 400", rec2.Code)
	}
	var e map[string]string
	if err := json.NewDecoder(rec2.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("bad sql: error body missing (%v)", err)
	}
	// GROUP BY — a valid query the progressive executor cannot serve
	// (gus.ErrUnsupported) — gets a 422, never a 500.
	req2b := httptest.NewRequest(http.MethodPost, "/query/stream",
		bytes.NewBufferString(`{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (50 PERCENT) GROUP BY cat"}`))
	rec2b := httptest.NewRecorder()
	s.handleQueryStream(rec2b, req2b)
	if rec2b.Code != http.StatusUnprocessableEntity {
		t.Fatalf("group by: status %d, want 422", rec2b.Code)
	}
	var body2b map[string]string
	if err := json.Unmarshal(rec2b.Body.Bytes(), &body2b); err != nil || !strings.Contains(body2b["error"], "GROUP BY") {
		t.Fatalf("group by: error body %q should name GROUP BY (%v)", rec2b.Body.String(), err)
	}
	// GET is rejected.
	req3 := httptest.NewRequest(http.MethodGet, "/query/stream", nil)
	rec3 := httptest.NewRecorder()
	s.handleQueryStream(rec3, req3)
	if rec3.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", rec3.Code)
	}
}

// TestQueryStreamClientDisconnect drives the handler through a real HTTP
// server and drops the connection after the first line: the stream must
// terminate (the request context cancels the query) without wedging the
// handler.
func TestQueryStreamClientDisconnect(t *testing.T) {
	s := streamServer(t)
	mux := http.NewServeMux()
	done := make(chan struct{})
	mux.HandleFunc("/query/stream", func(w http.ResponseWriter, r *http.Request) {
		defer close(done)
		s.handleQueryStream(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body := `{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (90 PERCENT)","seed":1,"waveRows":256}`
	resp, err := http.Post(srv.URL+"/query/stream", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first byte: %v", err)
	}
	resp.Body.Close() // disconnect mid-stream
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestServerCountersAndPprof: the server's registry counters must track
// served queries and scanned rows, and registerDebug must mount working
// pprof/vars handlers on the server's private mux.
func TestServerCountersAndPprof(t *testing.T) {
	s := testServer(t)
	q0 := s.metrics.queries.Value()
	r0 := s.metrics.rows.Value()
	_, resp := postQuery(t, s, `{"sql":"SELECT COUNT(*) FROM ev TABLESAMPLE (50 PERCENT)","seed":3}`)
	if resp == nil {
		t.Fatal("query failed")
	}
	if got := s.metrics.queries.Value() - q0; got != 1 {
		t.Fatalf("queries_served advanced by %d, want 1", got)
	}
	if got := s.metrics.rows.Value() - r0; got != uint64(resp.SampleRows) {
		t.Fatalf("rows_scanned advanced by %d, want %d", got, resp.SampleRows)
	}

	mux := http.NewServeMux()
	registerDebug(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", rec.Code)
	}
}

// TestMetricsEndpoint: GET /metrics must serve valid Prometheus text —
// DB-level gus_* metrics and server-level gusserve_* counters — without
// -pprof, while /debug/* stays gated.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	if _, resp := postQuery(t, s, `{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (25 PERCENT)","seed":1}`); resp == nil {
		t.Fatal("query failed")
	}
	mux := s.mux(false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`gus_queries_total{status="ok"} 1`,
		"# TYPE gus_query_seconds histogram",
		"gus_query_seconds_count 1",
		"gus_plan_cache_misses_total 1",
		"gusserve_queries_served_total 1",
		"gusserve_rows_scanned_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Every sample line must be `name[{labels}] value` with a parseable
	// float value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Label values may contain spaces, so the value is everything
		// after the LAST space.
		cut := strings.LastIndex(line, " ")
		if cut <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[cut+1:], 64); err != nil {
			t.Fatalf("non-numeric sample value in %q", line)
		}
	}
	// /debug stays opt-in: absent from the default mux...
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/pprof without -pprof: status %d, want 404", rec.Code)
	}
	// ...and mounted with -pprof.
	rec = httptest.NewRecorder()
	s.mux(true).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof with -pprof: status %d", rec.Code)
	}
}

// TestQueryIDAndExplain: responses carry the request's query ID, and an
// EXPLAIN ANALYZE statement returns the rendered trace stamped with it.
func TestQueryIDAndExplain(t *testing.T) {
	s := testServer(t)
	_, resp := postQuery(t, s, `{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (25 PERCENT)","seed":1}`)
	if resp == nil {
		t.Fatal("query failed")
	}
	if resp.QueryID == "" {
		t.Fatal("response missing queryId")
	}
	if resp.ExplainText != "" {
		t.Fatal("explainText set for a plain statement")
	}
	_, resp2 := postQuery(t, s, `{"sql":"EXPLAIN ANALYZE SELECT SUM(v) FROM ev TABLESAMPLE (25 PERCENT)","seed":1}`)
	if resp2 == nil {
		t.Fatal("explain query failed")
	}
	if resp2.QueryID == resp.QueryID {
		t.Fatal("query IDs not unique")
	}
	if !strings.Contains(resp2.ExplainText, "fused") || !strings.Contains(resp2.ExplainText, resp2.QueryID) {
		t.Fatalf("explainText missing stages or query ID:\n%s", resp2.ExplainText)
	}
	if !strings.Contains(resp2.ExplainText, "parse+plan") {
		t.Fatalf("explainText missing the parse+plan span:\n%s", resp2.ExplainText)
	}

	// Stream frames carry the ID too, and the Done frame of an EXPLAIN
	// ANALYZE stream carries the trace.
	ss := streamServer(t)
	_, ups := streamLines(t, ss,
		`{"sql":"EXPLAIN ANALYZE SELECT SUM(v) FROM ev TABLESAMPLE (50 PERCENT)","seed":2,"waveRows":4096}`)
	if len(ups) == 0 {
		t.Fatal("no stream updates")
	}
	last := ups[len(ups)-1]
	for _, u := range ups {
		if u.QueryID != last.QueryID || u.QueryID == "" {
			t.Fatalf("stream frames disagree on queryId: %+v", u)
		}
		if !u.Done && u.ExplainText != "" {
			t.Fatal("explainText on a non-final frame")
		}
	}
	if !last.Done || !strings.Contains(last.ExplainText, "wave") {
		t.Fatalf("final frame missing explain trace: %+v", last)
	}
}

// TestQueryArgs: {"sql": ..., "args": [...]} binds positional placeholders
// through the server's plan cache; results match the spliced-literal query
// exactly, integral JSON numbers bind as SQL integers, and repeated shapes
// hit the cache.
func TestQueryArgs(t *testing.T) {
	s := testServer(t)
	before := s.db.PlanCacheStats()
	rec, resp := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (? PERCENT) WHERE v > ?","args":[25, 40.5],"seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	recLit, respLit := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (25 PERCENT) WHERE v > 40.5","seed":7}`)
	if recLit.Code != http.StatusOK {
		t.Fatalf("literal status %d: %s", recLit.Code, recLit.Body)
	}
	if resp.Values[0].Estimate != respLit.Values[0].Estimate || resp.Values[0].StdErr != respLit.Values[0].StdErr {
		t.Fatalf("args-bound result diverges from literal: %+v vs %+v", resp.Values[0], respLit.Values[0])
	}
	// Same shape, different binding: a cache hit, not a re-plan.
	rec2, resp2 := postQuery(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (? PERCENT) WHERE v > ?","args":[25, 90.5],"seed":7}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec2.Code, rec2.Body)
	}
	if resp2.Values[0].Estimate >= resp.Values[0].Estimate {
		t.Fatalf("tighter predicate should shrink the estimate: %v vs %v",
			resp2.Values[0].Estimate, resp.Values[0].Estimate)
	}
	after := s.db.PlanCacheStats()
	if after.Hits == before.Hits {
		t.Fatalf("expected plan-cache hits to grow (before %+v, after %+v)", before, after)
	}
	// Integral JSON numbers bind as integers: cat is an Int column, so a
	// float binding would fail the comparison kind-compatibly but 3 works
	// like the literal 3.
	rec3, resp3 := postQuery(t, s,
		`{"sql":"SELECT COUNT(*) AS n FROM ev TABLESAMPLE (50 PERCENT) WHERE cat = ?","args":[3],"seed":1}`)
	if rec3.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec3.Code, rec3.Body)
	}
	_, respLit3 := postQuery(t, s,
		`{"sql":"SELECT COUNT(*) AS n FROM ev TABLESAMPLE (50 PERCENT) WHERE cat = 3","seed":1}`)
	if resp3.Values[0].Estimate != respLit3.Values[0].Estimate {
		t.Fatalf("integer arg diverges from literal: %v vs %v", resp3.Values[0].Estimate, respLit3.Values[0].Estimate)
	}

	// Arity and type errors are 400s with actionable bodies.
	recErr, _ := postQuery(t, s,
		`{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (? PERCENT)","args":[]}`)
	if recErr.Code != http.StatusBadRequest || !strings.Contains(recErr.Body.String(), "parameter") {
		t.Fatalf("arity error: status %d body %s", recErr.Code, recErr.Body)
	}
	recErr2, _ := postQuery(t, s,
		`{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (? PERCENT)","args":[true]}`)
	if recErr2.Code != http.StatusBadRequest || !strings.Contains(recErr2.Body.String(), "args[0]") {
		t.Fatalf("type error: status %d body %s", recErr2.Code, recErr2.Body)
	}
}

// TestErrorBodiesCarryQueryID: every 4xx/5xx from the query endpoints
// names the request's queryId, so a failed call ties back to its request
// log line; only failures that precede a request ID (405s) omit it.
func TestErrorBodiesCarryQueryID(t *testing.T) {
	s := testServer(t)
	errBody := func(name string, rec *httptest.ResponseRecorder) map[string]string {
		t.Helper()
		var e map[string]string
		if err := json.NewDecoder(rec.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Fatalf("%s: bad error body %q (%v)", name, rec.Body, err)
		}
		return e
	}
	cases := map[string]string{
		"malformed json": `{"sql": "SELECT`,
		"missing sql":    `{}`,
		"bad sql":        `{"sql":"SELEKT broken"}`,
		"unknown table":  `{"sql":"SELECT COUNT(*) FROM nope"}`,
	}
	seen := map[string]bool{}
	for name, body := range cases {
		rec, _ := postQuery(t, s, body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("/query %s: status %d", name, rec.Code)
		}
		qid := errBody("/query "+name, rec)["queryId"]
		if !strings.HasPrefix(qid, "q") {
			t.Fatalf("/query %s: queryId %q", name, qid)
		}
		if seen[qid] {
			t.Fatalf("/query %s: duplicate queryId %q", name, qid)
		}
		seen[qid] = true
	}
	// Stream endpoint: pre-stream failures (400 and the 422 for GROUP BY)
	// carry the ID too.
	for name, body := range map[string]string{
		"malformed json": `{`,
		"bad sql":        `{"sql":"SELECT FROM nope"}`,
		"group by":       `{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (50 PERCENT) GROUP BY cat"}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/query/stream", bytes.NewBufferString(body))
		rec := httptest.NewRecorder()
		s.handleQueryStream(rec, req)
		if rec.Code != http.StatusBadRequest && rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("/query/stream %s: status %d", name, rec.Code)
		}
		if qid := errBody("/query/stream "+name, rec)["queryId"]; !strings.HasPrefix(qid, "q") {
			t.Fatalf("/query/stream %s: queryId %q", name, qid)
		}
	}
	// A 405 happens before a request ID exists: the field is omitted.
	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if e := errBody("GET /query", rec); e["queryId"] != "" {
		t.Fatalf("405 body carries queryId %q, want none", e["queryId"])
	}
}

// TestAccuracyEndpoint: GET /accuracy serves the DB's CI-calibration
// report as JSON, empty-but-valid on a fresh server and reflecting
// recorded observations afterwards.
func TestAccuracyEndpoint(t *testing.T) {
	s := testServer(t)
	mux := s.mux(false)
	get := func() gus.AccuracyReport {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/accuracy", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /accuracy: status %d: %s", rec.Code, rec.Body)
		}
		var rep gus.AccuracyReport
		if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
			t.Fatalf("GET /accuracy: %v", err)
		}
		return rep
	}
	if rep := get(); rep.Observations != 0 || len(rep.Shapes) != 0 || rep.Auditor != nil {
		t.Fatalf("fresh server accuracy report: %+v", rep)
	}

	s.db.ObserveAccuracy("select sum(v) from ev", 10, 8, 12, 11, "A")
	s.db.ObserveAccuracy("select sum(v) from ev", 10, 8, 12, 20, "B")
	rep := get()
	if rep.Observations != 2 || rep.Covered != 1 || rep.CoverageRate != 0.5 {
		t.Fatalf("accuracy totals: %+v", rep)
	}
	if !(0 < rep.CoverageLow && rep.CoverageLow < 0.5 && 0.5 < rep.CoverageHigh && rep.CoverageHigh < 1) {
		t.Fatalf("Wilson interval [%v, %v] should strictly bracket 0.5", rep.CoverageLow, rep.CoverageHigh)
	}
	if len(rep.Shapes) != 1 || rep.Shapes[0].Shape != "select sum(v) from ev" || rep.Shapes[0].Observations != 2 {
		t.Fatalf("accuracy shapes: %+v", rep.Shapes)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/accuracy", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /accuracy: status %d, want 405", rec.Code)
	}
}

// TestStreamReliability: NDJSON frames carry the CI-reliability grade on
// every value (progressive waves always run diagnostics).
func TestStreamReliability(t *testing.T) {
	s := streamServer(t)
	rec, ups := streamLines(t, s,
		`{"sql":"SELECT SUM(v) AS s FROM ev TABLESAMPLE (50 PERCENT)","seed":7,"waveRows":4096}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	for _, u := range ups {
		v := u.Values[0]
		if v.Reliability == "" || v.Reliability < "A" || v.Reliability > "D" {
			t.Fatalf("wave %d reliability %q, want A–D", u.Wave, v.Reliability)
		}
		if v.VarianceRSE == nil || *v.VarianceRSE < 0 {
			t.Fatalf("wave %d varianceRse %v", u.Wave, v.VarianceRSE)
		}
	}
}

// TestStreamArgs: the NDJSON endpoint binds args too.
func TestStreamArgs(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query/stream",
		bytes.NewBufferString(`{"sql":"SELECT SUM(v) FROM ev TABLESAMPLE (? PERCENT) WHERE v > ?","args":[80, 10.5],"seed":3}`))
	rec := httptest.NewRecorder()
	s.handleQueryStream(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var last StreamUpdate
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !last.Final || last.Estimate == nil {
		t.Fatalf("expected a Final estimate, got %+v", last)
	}
}
