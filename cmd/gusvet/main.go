// Command gusvet is the multichecker for the repo's invariant-enforcing
// static analyzers: determinism, tracenil, poolcontract, hotpathmaps,
// ctxflow, and the //gus: annotation grammar itself.
//
// It speaks the `go vet` tool protocol:
//
//	go build -o bin/gusvet ./cmd/gusvet
//	go vet -vettool=$PWD/bin/gusvet ./...
//
// Run `gusvet help` for each analyzer's contract. See
// internal/analysis/doc.go for the annotation grammar.
package main

import "github.com/sampling-algebra/gus/internal/analysis"

func main() {
	analysis.Main(analysis.All()...)
}
