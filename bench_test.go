package gus

// Benchmarks, one per paper artifact plus component-level microbenches.
// Mapping (see DESIGN.md's per-experiment index):
//
//	Figure 1  → BenchmarkFigure1Translation
//	Figure 2  → BenchmarkFigure2Query1Rewrite, BenchmarkQuery1EndToEnd
//	Figure 4  → BenchmarkFigure4Rewrite
//	Figure 5  → BenchmarkFigure5SubsampleRewrite
//	§6.1 runtime claim → BenchmarkRewriteNRelations/*
//	§6.3 moments       → BenchmarkMoments/*, BenchmarkUnbiasedY/*
//	§7 sub-sampling    → BenchmarkVarianceEstimation/*
//	E6/E7 accuracy     → driven by cmd/gusbench (statistical, not timed)

import (
	"context"
	"fmt"
	"testing"

	"github.com/sampling-algebra/gus/internal/core"
	"github.com/sampling-algebra/gus/internal/engine"
	"github.com/sampling-algebra/gus/internal/estimator"
	"github.com/sampling-algebra/gus/internal/expr"
	"github.com/sampling-algebra/gus/internal/lineage"
	"github.com/sampling-algebra/gus/internal/ops"
	"github.com/sampling-algebra/gus/internal/plan"
	"github.com/sampling-algebra/gus/internal/relation"
	"github.com/sampling-algebra/gus/internal/sampling"
	"github.com/sampling-algebra/gus/internal/sqlparse"
	"github.com/sampling-algebra/gus/internal/stats"
	"github.com/sampling-algebra/gus/internal/tpch"
)

// BenchmarkFigure1Translation measures translating concrete sampling
// methods into GUS parameters (Figure 1).
func BenchmarkFigure1Translation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Bernoulli("l", 0.1); err != nil {
			b.Fatal(err)
		}
		if _, err := core.WOR("o", 1000, 150000); err != nil {
			b.Fatal(err)
		}
	}
}

func query1PlanForBench(b *testing.B, orders int) plan.Node {
	b.Helper()
	tb, err := tpch.Generate(tpch.Config{Orders: orders, Customers: orders / 10, Parts: orders / 40, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	bern, _ := sampling.NewBernoulli("lineitem", 0.1)
	wor, _ := sampling.NewWOR("orders", 1000)
	return &plan.Select{
		Input: &plan.Join{
			Left:     &plan.Sample{Input: &plan.Scan{Rel: tb.Lineitem}, Method: bern},
			Right:    &plan.Sample{Input: &plan.Scan{Rel: tb.Orders}, Method: wor},
			LeftCol:  "l_orderkey",
			RightCol: "o_orderkey",
		},
		Pred: expr.Gt(expr.Col("l_extendedprice"), expr.Float(100)),
	}
}

// BenchmarkFigure2Query1Rewrite measures the SOA rewrite of the paper's
// Query 1 plan (Figure 2 a→c).
func BenchmarkFigure2Query1Rewrite(b *testing.B) {
	n := query1PlanForBench(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Analyze(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Rewrite measures the 4-relation Figure 4 rewrite.
func BenchmarkFigure4Rewrite(b *testing.B) {
	tb, err := tpch.Generate(tpch.Config{Orders: 2000, Customers: 100, Parts: 60, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	bernL, _ := sampling.NewBernoulli("lineitem", 0.1)
	worO, _ := sampling.NewWOR("orders", 1000)
	bernP, _ := sampling.NewBernoulli("part", 0.5)
	n := &plan.Join{
		Left: &plan.Join{
			Left: &plan.Join{
				Left:     &plan.Sample{Input: &plan.Scan{Rel: tb.Lineitem}, Method: bernL},
				Right:    &plan.Sample{Input: &plan.Scan{Rel: tb.Orders}, Method: worO},
				LeftCol:  "l_orderkey",
				RightCol: "o_orderkey",
			},
			Right:    &plan.Scan{Rel: tb.Customer},
			LeftCol:  "o_custkey",
			RightCol: "c_custkey",
		},
		Right:    &plan.Sample{Input: &plan.Scan{Rel: tb.Part}, Method: bernP},
		LeftCol:  "l_partkey",
		RightCol: "p_partkey",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Analyze(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5SubsampleRewrite measures the §7 sub-sampling rewrite
// (Figure 5 a→f).
func BenchmarkFigure5SubsampleRewrite(b *testing.B) {
	inner := query1PlanForBench(b, 2000)
	sub, _ := sampling.NewLineageHash(7, map[string]float64{"lineitem": 0.2, "orders": 0.3})
	n := &plan.Sample{Input: inner, Method: sub}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Analyze(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteNRelations checks the §6.1 claim ("a few milliseconds
// even for plans involving 10 relations") across plan widths.
func BenchmarkRewriteNRelations(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8, 10, 12} {
		b.Run(fmt.Sprintf("relations=%d", k), func(b *testing.B) {
			var root plan.Node
			for i := 0; i < k; i++ {
				name := fmt.Sprintf("r%d", i)
				rel := relation.MustNew(name, relation.MustSchema(
					relation.Column{Name: fmt.Sprintf("k%d", i), Kind: relation.KindInt}))
				for j := 0; j < 4; j++ {
					rel.MustAppend(relation.Int(int64(j)))
				}
				m, err := sampling.NewBernoulli(name, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				leaf := plan.Node(&plan.Sample{Input: &plan.Scan{Rel: rel}, Method: m})
				if root == nil {
					root = leaf
					continue
				}
				root = &plan.Join{Left: root, Right: leaf,
					LeftCol: fmt.Sprintf("k%d", i-1), RightCol: fmt.Sprintf("k%d", i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Analyze(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sampleRowsForBench(b *testing.B, rows int, n int) ([]lineage.Vector, []float64) {
	b.Helper()
	rng := stats.NewRNG(5)
	lins := make([]lineage.Vector, rows)
	fs := make([]float64, rows)
	for i := range lins {
		v := lineage.NewVector(n)
		for j := range v {
			v[j] = lineage.TupleID(rng.Intn(rows/4 + 1))
		}
		lins[i] = v
		fs[i] = rng.Float64() * 100
	}
	return lins, fs
}

// BenchmarkMoments measures the §6.3 Y_S group-by-lineage computation.
func BenchmarkMoments(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		for _, n := range []int{2, 4} {
			b.Run(fmt.Sprintf("rows=%d/relations=%d", rows, n), func(b *testing.B) {
				lins, fs := sampleRowsForBench(b, rows, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					estimator.Moments(n, lins, fs)
				}
			})
		}
	}
}

// BenchmarkUnbiasedY measures the §6.3 Ŷ recursion across schema widths.
func BenchmarkUnbiasedY(b *testing.B) {
	for _, n := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("relations=%d", n), func(b *testing.B) {
			g, err := core.Bernoulli("r0", 0.5)
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i < n; i++ {
				next, err := core.Bernoulli(fmt.Sprintf("r%d", i), 0.5)
				if err != nil {
					b.Fatal(err)
				}
				if g, err = core.Compose(g, next); err != nil {
					b.Fatal(err)
				}
			}
			y := make([]float64, 1<<uint(n))
			rng := stats.NewRNG(3)
			for i := range y {
				y[i] = rng.Float64() * 1000
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := estimator.UnbiasedY(g, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVarianceEstimation compares full-sample vs §7 sub-sampled
// variance estimation on a large sample.
func BenchmarkVarianceEstimation(b *testing.B) {
	n := query1PlanForBench(b, 20000)
	analysis, err := plan.Analyze(n)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := plan.Execute(n, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	f := expr.Col("l_extendedprice")
	for _, target := range []int{0, 10000, 1000} {
		name := "full"
		if target > 0 {
			name = fmt.Sprintf("subsample=%d", target)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := estimator.Estimate(analysis.G, rows, f,
					estimator.Options{MaxVarianceRows: target, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecuteQuery1 measures executing the sampled plan itself.
func BenchmarkExecuteQuery1(b *testing.B) {
	n := query1PlanForBench(b, 8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(n, stats.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures parsing the paper's Query 1 text.
func BenchmarkSQLParse(b *testing.B) {
	const sql = `
SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05),
       QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95)
FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery1EndToEnd measures the full pipeline: parse, plan,
// execute, rewrite, estimate, interval — the §1 APPROX view.
func BenchmarkQuery1EndToEnd(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 4000, Customers: 400, Parts: 100, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	const sql = `
SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05),
       QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95)
FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql, WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures the full pipeline (parse, plan, execute,
// estimate) on the TPC-H generator, in two dimensions:
//
//   - join/…  — the paper's Query-1 shape (two sampled scans, hash join,
//     selection), serial vs parallel, columnar vs the row-at-a-time
//     baseline (…-rowpath);
//   - scanheavy/… — a TPC-H Q1-style single-table aggregation (sampled
//     scan, predicate, three aggregates): the vectorized hot path's
//     headline case, recorded in BENCH_columnar.json.
//
// Seeded results are bit-identical across every sub-benchmark; only
// wall-clock may differ. On a single-core host workers=N measures engine
// overhead, not speedup; the columnar-vs-rowpath comparison is valid on
// any core count.
func BenchmarkQuery(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 20000, Customers: 2000, Parts: 500, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	const joinSQL = `
SELECT SUM(l_discount*(1.0-l_tax))
FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`
	// TPC-H Q1 style: scan-dominated single-table aggregation.
	const scanSQL = `
SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue,
       SUM(l_quantity) AS qty,
       COUNT(*) AS n
FROM lineitem TABLESAMPLE (25 PERCENT)
WHERE l_quantity < 24.0`
	run := func(sql string, workers int, rowPath bool) func(*testing.B) {
		return func(b *testing.B) {
			opts := []Option{WithWorkers(workers)}
			if rowPath {
				opts = append(opts, withRowEngine())
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql, append(opts, WithSeed(uint64(i)))...); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(joinSQL, 1, false))
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), run(joinSQL, w, false))
	}
	b.Run("serial-rowpath", run(joinSQL, 1, true))
	b.Run("scanheavy/columnar", run(scanSQL, 1, false))
	b.Run("scanheavy/columnar-workers=4", run(scanSQL, 4, false))
	b.Run("scanheavy/rowpath", run(scanSQL, 1, true))
}

// BenchmarkPrepared measures compile-once/execute-many against one-shot
// execution (BENCH_prepared.json), on a point query and a TPC-H Q1-style
// scan. Three modes each:
//
//   - oneshot  — db.Query with the plan cache disabled: parse, plan and
//     kernel compilation every iteration (the pre-cache behavior);
//   - cached   — db.Query with the default LRU plan cache: lex-normalize,
//     cache hit, execute;
//   - prepared — Stmt.Query with `?` bindings: re-execution skips parse
//     and plan entirely (no per-call lexing; kernels from the statement's
//     snapshot).
//
// Seeds vary per iteration, so sampling work is identical across modes;
// only the per-call front-end cost differs. The point query runs at a
// scale where that front end is a visible fraction of the call (a true
// point lookup); the Q1 shape shows the same saving diluted by a scan.
func BenchmarkPrepared(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 5000, Customers: 500, Parts: 125, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	const pointPrep = `SELECT COUNT(*), SUM(o_totalprice) FROM orders TABLESAMPLE (50 PERCENT) WHERE o_custkey = ?`
	const pointLit = `SELECT COUNT(*), SUM(o_totalprice) FROM orders TABLESAMPLE (50 PERCENT) WHERE o_custkey = 77`
	const q1Prep = `SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue, SUM(l_quantity) AS qty, COUNT(*) AS n
FROM lineitem TABLESAMPLE (? PERCENT) WHERE l_quantity < ?`
	const q1Lit = `SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue, SUM(l_quantity) AS qty, COUNT(*) AS n
FROM lineitem TABLESAMPLE (25 PERCENT) WHERE l_quantity < 24.0`

	oneshot := func(sql string) func(*testing.B) {
		return func(b *testing.B) {
			db.SetPlanCacheCap(0)
			defer db.SetPlanCacheCap(DefaultPlanCacheSize)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql, WithSeed(uint64(i)), WithWorkers(1)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	cached := func(sql string) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(sql, WithSeed(uint64(i)), WithWorkers(1)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	prepared := func(sql string, args ...any) func(*testing.B) {
		return func(b *testing.B) {
			st, err := db.Prepare(sql)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				all := append(append([]any{}, args...), WithSeed(uint64(i)), WithWorkers(1))
				if _, err := st.Query(ctx, all...); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("point/oneshot", oneshot(pointLit))
	b.Run("point/cached", cached(pointLit))
	b.Run("point/prepared", prepared(pointPrep, 77))
	b.Run("q1/oneshot", oneshot(q1Lit))
	b.Run("q1/cached", cached(q1Lit))
	b.Run("q1/prepared", prepared(q1Prep, 25, 24.0))
}

// BenchmarkEngineExecute isolates plan execution (no estimation) serial
// vs parallel on the engine.
func BenchmarkEngineExecute(b *testing.B) {
	n := query1PlanForBench(b, 20000)
	for _, w := range []int{1, 2, 4, 8} {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("workers=%d", w)
		}
		b.Run(name, func(b *testing.B) {
			eng := engine.New(engine.Config{Workers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(n, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoin isolates the engine's hash join (no sampling, no
// estimation) on TPC-H-shaped inputs: lineitem ⋈ orders through the
// columnar open-addressing path and the row-at-a-time baseline, serial and
// parallel. Allocations are the headline (BENCH_hashjoin.json): the
// dictionary/hash scheme materializes no per-row keys.
func BenchmarkJoin(b *testing.B) {
	tb, err := tpch.Generate(tpch.Config{Orders: 10000, Customers: 1000, Parts: 200, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	p := &plan.Join{
		Left:     &plan.Scan{Rel: tb.Lineitem},
		Right:    &plan.Scan{Rel: tb.Orders},
		LeftCol:  "l_orderkey",
		RightCol: "o_orderkey",
	}
	run := func(workers int, rowPath bool) func(*testing.B) {
		return func(b *testing.B) {
			eng := engine.New(engine.Config{Workers: workers})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if rowPath {
					_, err = eng.ExecuteRows(p, 1)
				} else {
					_, err = eng.ExecuteBatch(p, 1)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("columnar/serial", run(1, false))
	b.Run("columnar/workers=4", run(4, false))
	b.Run("rowpath/serial", run(1, true))
}

// BenchmarkGroupBy measures a grouped aggregate end to end (parse, plan,
// fused scan, typed-grouper partitioning, per-group estimation) — the
// GROUP BY half of the zero-allocation keyed hot path.
func BenchmarkGroupBy(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 20000, Customers: 2000, Parts: 500, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	const sql = `
SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem TABLESAMPLE (25 PERCENT)
WHERE l_quantity < 30.0
GROUP BY l_linenumber`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql, WithWorkers(1), WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin isolates the join operator on TPC-H-shaped inputs.
func BenchmarkHashJoin(b *testing.B) {
	tb, err := tpch.Generate(tpch.Config{Orders: 10000, Customers: 1000, Parts: 200, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	l, err := ops.FromRelation(tb.Lineitem, "")
	if err != nil {
		b.Fatal(err)
	}
	r, err := ops.FromRelation(tb.Orders, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.HashJoin(l, r, "l_orderkey", "o_orderkey"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGUSAlgebra measures the raw algebra operations on 8-relation
// parameter sets — the per-step cost inside the rewriter.
func BenchmarkGUSAlgebra(b *testing.B) {
	mk := func(tag string) *core.Params {
		g, err := core.Bernoulli(tag+"0", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i < 8; i++ {
			next, err := core.Bernoulli(fmt.Sprintf("%s%d", tag, i), 0.3)
			if err != nil {
				b.Fatal(err)
			}
			if g, err = core.Compose(g, next); err != nil {
				b.Fatal(err)
			}
		}
		return g
	}
	g1 := mk("x")
	g2 := mk("x")
	g3 := mk("y")
	b.Run("compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compact(g1, g2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Union(g1, g2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Join(g1, g3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g1.CS()
		}
	})
}

// BenchmarkProgressive measures online aggregation's time-to-accuracy on
// a TPC-H Q1-style revenue aggregate (~120k lineitems):
//
//   - to-1pct-ci    — QueryProgressive with WithTargetRelativeCI(0.01):
//     stops as soon as the CI half-width is within 1% of the estimate
//     (the "%scanned" metric reports how much data that took);
//   - full-stream   — the same stream run to completion (its final
//     update is bit-identical to Query);
//   - one-shot      — plain Query, the baseline all of it converges to.
//
// Recorded in BENCH_online.json: the headline is to-1pct-ci wall-clock
// versus one-shot, i.e. what an accuracy budget saves over a full scan.
func BenchmarkProgressive(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 30000, Customers: 3000, Parts: 750, Seed: 31}); err != nil {
		b.Fatal(err)
	}
	const sql = `
SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue
FROM lineitem TABLESAMPLE (90 PERCENT)
WHERE l_quantity < 45.0`
	stream := func(opts ...Option) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var frac float64
			for i := 0; i < b.N; i++ {
				ch, wait := db.QueryProgressive(context.Background(), sql,
					append([]Option{WithSeed(7)}, opts...)...)
				var last Update
				for u := range ch {
					last = u
				}
				if err := wait(); err != nil {
					b.Fatal(err)
				}
				frac = last.FractionScanned
			}
			b.ReportMetric(100*frac, "%scanned")
		}
	}
	b.Run("to-1pct-ci", stream(WithTargetRelativeCI(0.01)))
	b.Run("full-stream", stream())
	b.Run("one-shot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(sql, WithSeed(7)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100, "%scanned")
	})
}

// BenchmarkTraceOverhead quantifies the tracing tax on the BenchmarkQuery
// join shape: `off` is the production path (nil trace — every span site
// is one pointer test), `on` attaches a fresh Trace per query. Compare
// the two sub-benchmarks to price WithTrace; compare `off` against
// BenchmarkQuery history to confirm the disabled path stayed within the
// ≤2% regression budget (TestTraceOverheadGuard holds the allocation
// half of that contract).
func BenchmarkTraceOverhead(b *testing.B) {
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: 20000, Customers: 2000, Parts: 500, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	const sql = `
SELECT SUM(l_discount*(1.0-l_tax))
FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(sql, WithSeed(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := &Trace{}
			if _, err := db.Query(sql, WithSeed(uint64(i)), WithTrace(tr)); err != nil {
				b.Fatal(err)
			}
			if len(tr.Spans) == 0 {
				b.Fatal("no spans recorded")
			}
		}
	})
}
