package gus

// Prepared-statement suite: the equivalence contract (a *Stmt execution is
// bit-identical to the literal-SQL query for any binding, seed and worker
// count, across Query, Exact and QueryProgressive), concurrent reuse of
// one shared Stmt under varying bindings, the DB-wide plan cache's LRU and
// catalog-write invalidation semantics, and the placeholder error surface.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// sameValues asserts every estimator field of two results matches exactly
// (bit-identity, not approximate closeness). PlanText intentionally
// differs — a prepared plan prints `?N` where the literal plan prints the
// constant — so only numeric outputs are compared.
func sameValues(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.SampleRows != want.SampleRows {
		t.Fatalf("%s: SampleRows %d != %d", tag, got.SampleRows, want.SampleRows)
	}
	if len(got.Values) != len(want.Values) || len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: shape mismatch: %d/%d values, %d/%d groups",
			tag, len(got.Values), len(want.Values), len(got.Groups), len(want.Groups))
	}
	cmp := func(tag string, g, w Value) {
		t.Helper()
		if g.Name != w.Name || g.Kind != w.Kind {
			t.Fatalf("%s: label mismatch: %s/%s vs %s/%s", tag, g.Name, g.Kind, w.Name, w.Kind)
		}
		if g.Value != w.Value || g.Estimate != w.Estimate || g.StdErr != w.StdErr ||
			g.CILow != w.CILow || g.CIHigh != w.CIHigh || g.Approximate != w.Approximate {
			t.Fatalf("%s: not bit-identical:\n got %+v\nwant %+v", tag, g, w)
		}
	}
	for i := range got.Values {
		cmp(fmt.Sprintf("%s value[%d]", tag, i), got.Values[i], want.Values[i])
	}
	for i := range got.Groups {
		if got.Groups[i].Key != want.Groups[i].Key {
			t.Fatalf("%s: group[%d] key %q != %q", tag, i, got.Groups[i].Key, want.Groups[i].Key)
		}
		for j := range got.Groups[i].Values {
			cmp(fmt.Sprintf("%s group[%d].value[%d]", tag, i, j), got.Groups[i].Values[j], want.Groups[i].Values[j])
		}
	}
}

// TestPreparedEquivalence is the equivalence suite: for every query shape
// the dialect supports — predicate placeholders, aggregate-argument
// placeholders, TABLESAMPLE (? PERCENT | ? ROWS), SYSTEM(?), QUANTILE,
// AVG, GROUP BY — a prepared execution must be bit-identical to db.Query
// and db.Exact on the spliced-literal SQL, across seeds and worker counts.
func TestPreparedEquivalence(t *testing.T) {
	db := testDB(t, 3000)
	cases := []struct {
		name string
		prep string
		args []any
		lit  string
	}{
		{
			name: "point-predicate",
			prep: `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (10 PERCENT) WHERE l_quantity < ?`,
			args: []any{24.0},
			lit:  `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (10 PERCENT) WHERE l_quantity < 24.0`,
		},
		{
			name: "sample-rate-param",
			prep: `SELECT COUNT(*) FROM lineitem TABLESAMPLE (? PERCENT) WHERE l_quantity < ?`,
			args: []any{25, 30.0},
			lit:  `SELECT COUNT(*) FROM lineitem TABLESAMPLE (25 PERCENT) WHERE l_quantity < 30.0`,
		},
		{
			name: "rows-param-join",
			prep: `SELECT SUM(l_discount*(1.0-l_tax)) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (? ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > ?`,
			args: []any{500, 100.0},
			lit:  `SELECT SUM(l_discount*(1.0-l_tax)) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (500 ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`,
		},
		{
			name: "system-param",
			prep: `SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE SYSTEM (?)`,
			args: []any{20},
			lit:  `SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE SYSTEM (20)`,
		},
		{
			name: "bernoulli-param",
			prep: `SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE BERNOULLI (?)`,
			args: []any{15.0},
			lit:  `SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE BERNOULLI (15)`,
		},
		{
			name: "aggregate-arg-param",
			prep: `SELECT SUM(l_extendedprice*(1.0-?)) AS disc, AVG(l_quantity*?) AS q FROM lineitem TABLESAMPLE (20 PERCENT) WHERE l_quantity < ?`,
			args: []any{0.05, 2.0, 40.0},
			lit:  `SELECT SUM(l_extendedprice*(1.0-0.05)) AS disc, AVG(l_quantity*2.0) AS q FROM lineitem TABLESAMPLE (20 PERCENT) WHERE l_quantity < 40.0`,
		},
		{
			name: "quantile-numbered-params",
			prep: `SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) FROM lineitem TABLESAMPLE (?1 PERCENT), orders TABLESAMPLE (1000 ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > ?2`,
			args: []any{10, 100.0},
			lit:  `SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`,
		},
		{
			name: "int-param-int-column",
			prep: `SELECT COUNT(*) FROM lineitem TABLESAMPLE (30 PERCENT) WHERE l_linenumber = ?`,
			args: []any{2},
			lit:  `SELECT COUNT(*) FROM lineitem TABLESAMPLE (30 PERCENT) WHERE l_linenumber = 2`,
		},
		{
			name: "group-by",
			prep: `SELECT SUM(l_extendedprice) AS rev, COUNT(*) AS n FROM lineitem TABLESAMPLE (25 PERCENT) WHERE l_quantity < ? GROUP BY l_linenumber`,
			args: []any{30.0},
			lit:  `SELECT SUM(l_extendedprice) AS rev, COUNT(*) AS n FROM lineitem TABLESAMPLE (25 PERCENT) WHERE l_quantity < 30.0 GROUP BY l_linenumber`,
		},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := db.Prepare(tc.prep)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumParams() != len(tc.args) {
				t.Fatalf("NumParams = %d, want %d", st.NumParams(), len(tc.args))
			}
			for _, seed := range []uint64{1, 7, 42} {
				for _, workers := range []int{1, 3} {
					tag := fmt.Sprintf("seed=%d workers=%d", seed, workers)
					opts := []Option{WithSeed(seed), WithWorkers(workers)}
					want, err := db.Query(tc.lit, opts...)
					if err != nil {
						t.Fatalf("%s literal: %v", tag, err)
					}
					args := append(append([]any{}, tc.args...), WithSeed(seed), WithWorkers(workers))
					got, err := st.Query(ctx, args...)
					if err != nil {
						t.Fatalf("%s prepared: %v", tag, err)
					}
					sameValues(t, tag, got, want)
					// Repeat execution must be identical too (kernel reuse).
					again, err := st.Query(ctx, args...)
					if err != nil {
						t.Fatalf("%s prepared again: %v", tag, err)
					}
					sameValues(t, tag+" re-exec", again, want)
				}
				wantX, err := db.Exact(tc.lit, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				gotX, err := st.Exact(ctx, append(append([]any{}, tc.args...), WithSeed(seed))...)
				if err != nil {
					t.Fatal(err)
				}
				sameValues(t, fmt.Sprintf("exact seed=%d", seed), gotX, wantX)
			}
		})
	}
}

// TestPreparedStringParam binds a string placeholder against a string
// column, including the row-engine baseline path.
func TestPreparedStringParam(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("ev", Column{"cat", String}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		cat := []string{"a", "b", "c"}[i%3]
		if err := tb.Insert(cat, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Prepare(`SELECT SUM(v), COUNT(*) FROM ev TABLESAMPLE (50 PERCENT) WHERE cat = ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, cat := range []string{"a", "b", "zzz"} {
		lit := fmt.Sprintf(`SELECT SUM(v), COUNT(*) FROM ev TABLESAMPLE (50 PERCENT) WHERE cat = '%s'`, cat)
		want, err := db.Query(lit, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Query(ctx, cat, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		sameValues(t, "cat="+cat, got, want)
		// The legacy row engine binds scalars instead of vector kernels;
		// both paths must agree.
		gotRow, err := st.Query(ctx, cat, WithSeed(3), withRowEngine())
		if err != nil {
			t.Fatal(err)
		}
		sameValues(t, "rowpath cat="+cat, gotRow, want)
	}
}

// TestPreparedKindRebinding executes one Stmt with an int binding, then a
// float binding, then an int again: each signature compiles its own
// kernels and results match the spliced literals every time.
func TestPreparedKindRebinding(t *testing.T) {
	db := testDB(t, 1500)
	st, err := db.Prepare(`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (40 PERCENT) WHERE l_linenumber < ?`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	steps := []struct {
		arg any
		lit string
	}{
		{3, `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (40 PERCENT) WHERE l_linenumber < 3`},
		{2.5, `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (40 PERCENT) WHERE l_linenumber < 2.5`},
		{4, `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (40 PERCENT) WHERE l_linenumber < 4`},
	}
	for _, s := range steps {
		want, err := db.Query(s.lit, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Query(ctx, s.arg, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		sameValues(t, fmt.Sprintf("arg=%v", s.arg), got, want)
	}
}

// TestPreparedProgressiveEquivalence runs a prepared progressive stream to
// completion: its Final update must carry exactly db.Query's numbers, and
// the stream must also match db.QueryProgressive on the literal SQL.
func TestPreparedProgressiveEquivalence(t *testing.T) {
	db := testDB(t, 3000)
	const prep = `SELECT SUM(l_extendedprice*(1.0-l_discount)) FROM lineitem TABLESAMPLE (? PERCENT) WHERE l_quantity < ?`
	const lit = `SELECT SUM(l_extendedprice*(1.0-l_discount)) FROM lineitem TABLESAMPLE (80 PERCENT) WHERE l_quantity < 45.0`
	st, err := db.Prepare(prep)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ch, wait := st.QueryProgressive(context.Background(), 80, 45.0, WithSeed(11), WithWorkers(workers))
		var last Update
		n := 0
		for u := range ch {
			last = u
			n++
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
		if n < 2 || !last.Final {
			t.Fatalf("expected a multi-wave stream ending Final, got %d updates (final=%v)", n, last.Final)
		}
		want, err := db.Query(lit, WithSeed(11), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		v := last.Values[0]
		w := want.Values[0]
		if v.Estimate != w.Estimate || v.StdErr != w.StdErr || v.CILow != w.CILow || v.CIHigh != w.CIHigh {
			t.Fatalf("final update not bit-identical to Query: %+v vs %+v", v, w)
		}
	}
}

// TestPreparedConcurrentStmt hammers ONE shared *Stmt from 16 goroutines
// with different bindings and seeds; every result must be bit-identical to
// a serial literal-SQL reference computed up front. This is the CI -race
// target for prepared-pipeline snapshot safety.
func TestPreparedConcurrentStmt(t *testing.T) {
	db := testDB(t, 2000)
	st, err := db.Prepare(`SELECT SUM(l_discount*(1.0-l_tax)) FROM lineitem TABLESAMPLE (? PERCENT), orders TABLESAMPLE (400 ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > ?`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	type job struct {
		pct   int
		price float64
		seed  uint64
	}
	jobs := make([]job, goroutines)
	refs := make([]*Result, goroutines)
	for i := range jobs {
		jobs[i] = job{pct: 10 + (i%4)*10, price: 50.0 * float64(1+i%3), seed: uint64(i%5 + 1)}
		lit := fmt.Sprintf(`SELECT SUM(l_discount*(1.0-l_tax)) FROM lineitem TABLESAMPLE (%d PERCENT), orders TABLESAMPLE (400 ROWS) WHERE l_orderkey = o_orderkey AND l_extendedprice > %v`,
			jobs[i].pct, jobs[i].price)
		ref, err := db.Query(lit, WithSeed(jobs[i].seed), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				res, err := st.Query(context.Background(), jobs[i].pct, jobs[i].price,
					WithSeed(jobs[i].seed), WithWorkers(1+i%3))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", i, err)
					return
				}
				g, w := res.Values[0], refs[i].Values[0]
				if g.Estimate != w.Estimate || g.StdErr != w.StdErr || g.CILow != w.CILow || g.CIHigh != w.CIHigh {
					errs <- fmt.Errorf("goroutine %d rep %d: diverged from serial reference", i, rep)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCacheHitsAndNormalization: re-running the same statement — even
// spelled with different whitespace and keyword case — hits the cache.
func TestPlanCacheHitsAndNormalization(t *testing.T) {
	db := testDB(t, 500)
	base := db.PlanCacheStats()
	if _, err := db.Query(`SELECT COUNT(*) FROM lineitem TABLESAMPLE (10 PERCENT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select   count(*)\nfrom lineitem tablesample (10 percent)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM lineitem TABLESAMPLE (10 PERCENT)`, WithSeed(9)); err != nil {
		t.Fatal(err)
	}
	s := db.PlanCacheStats()
	if hits := s.Hits - base.Hits; hits != 2 {
		t.Fatalf("expected 2 cache hits, got %d (stats %+v)", hits, s)
	}
	if misses := s.Misses - base.Misses; misses != 1 {
		t.Fatalf("expected 1 cache miss, got %d (stats %+v)", misses, s)
	}
}

// TestPlanCacheInvalidation: a catalog write (Insert / CreateTable /
// LoadCSV-equivalent) after Prepare must not serve a stale plan — the next
// db.Query misses the cache, re-plans, and sees the new data.
func TestPlanCacheInvalidation(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("t", Column{"v", Int})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := tb.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	const sql = `SELECT COUNT(*) FROM t`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].Value != 100 {
		t.Fatalf("count = %v, want 100", res.Values[0].Value)
	}
	before := db.PlanCacheStats()
	if err := tb.Insert(101); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].Value != 101 {
		t.Fatalf("count after insert = %v, want 101 (stale plan served?)", res.Values[0].Value)
	}
	after := db.PlanCacheStats()
	if after.Misses == before.Misses {
		t.Fatalf("expected the write to invalidate the cached plan (stats before %+v, after %+v)", before, after)
	}

	// A statement that could not plan before a catalog write must plan
	// after it: "unknown table" outcomes are not cached.
	if _, err := db.Query(`SELECT COUNT(*) FROM u`); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := db.CreateTable("u", Column{"w", Int}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM u`); err != nil {
		t.Fatalf("query after CreateTable: %v", err)
	}

	// User-held Stmts keep reading live data (they are not cache entries).
	st, err := db.Prepare(`SELECT SUM(v) FROM t WHERE v > ?`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1000); err != nil {
		t.Fatal(err)
	}
	r2, err := st.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Values[0].Value != r1.Values[0].Value+1000 {
		t.Fatalf("prepared stmt did not see the insert: %v then %v", r1.Values[0].Value, r2.Values[0].Value)
	}
}

// TestPlanCacheLRUBound: the cache never exceeds its capacity and evicts
// least-recently-used entries.
func TestPlanCacheLRUBound(t *testing.T) {
	db := testDB(t, 200)
	db.SetPlanCacheCap(2)
	for _, pct := range []int{5, 10, 15, 20} {
		sql := fmt.Sprintf(`SELECT COUNT(*) FROM lineitem TABLESAMPLE (%d PERCENT)`, pct)
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.PlanCacheStats(); s.Entries > 2 {
		t.Fatalf("cache grew past its cap: %+v", s)
	}
	db.SetPlanCacheCap(0)
	if _, err := db.Query(`SELECT COUNT(*) FROM lineitem TABLESAMPLE (5 PERCENT)`); err != nil {
		t.Fatal(err)
	}
	if s := db.PlanCacheStats(); s.Entries != 0 {
		t.Fatalf("disabled cache still holds entries: %+v", s)
	}
}

// TestPreparedErrors covers the placeholder error surface: arity
// mismatches, unbindable types, `?` where only literals are legal, and
// mis-typed TABLESAMPLE bindings.
func TestPreparedErrors(t *testing.T) {
	db := testDB(t, 200)
	ctx := context.Background()

	// db.Query cannot bind placeholders.
	if _, err := db.Query(`SELECT COUNT(*) FROM lineitem TABLESAMPLE (10 PERCENT) WHERE l_quantity < ?`); err == nil ||
		!strings.Contains(err.Error(), "1 parameter") {
		t.Fatalf("expected arity error from db.Query on placeholder SQL, got %v", err)
	}

	st, err := db.Prepare(`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (? PERCENT) WHERE l_quantity < ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(ctx, 10); err == nil || !strings.Contains(err.Error(), "wants 2 parameter") {
		t.Fatalf("expected arity error, got %v", err)
	}
	if _, err := st.Query(ctx, 10, 20.0, 30.0); err == nil || !strings.Contains(err.Error(), "wants 2 parameter") {
		t.Fatalf("expected arity error, got %v", err)
	}
	// TABLESAMPLE (? PERCENT) bound to a string is a type error.
	if _, err := st.Query(ctx, "ten", 20.0); err == nil || !strings.Contains(err.Error(), "must be numeric") {
		t.Fatalf("expected numeric-binding error, got %v", err)
	}
	// Percent range still enforced for bound values.
	if _, err := st.Query(ctx, 150, 20.0); err == nil || !strings.Contains(err.Error(), "outside [0,100]") {
		t.Fatalf("expected range error, got %v", err)
	}
	// Unsupported Go types are rejected by position.
	if _, err := st.Query(ctx, []byte("x"), 20.0); err == nil || !strings.Contains(err.Error(), "argument 1") {
		t.Fatalf("expected bind-type error, got %v", err)
	}

	// ROWS placeholders must bind non-negative integers.
	st2, err := db.Prepare(`SELECT COUNT(*) FROM orders TABLESAMPLE (? ROWS)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Query(ctx, 12.5); err == nil || !strings.Contains(err.Error(), "non-negative integer") {
		t.Fatalf("expected ROWS integer error, got %v", err)
	}
	if _, err := st2.Query(ctx, -5); err == nil || !strings.Contains(err.Error(), "non-negative integer") {
		t.Fatalf("expected ROWS negative error, got %v", err)
	}

	// `?` in table position is a parse error with a position.
	if _, err := db.Prepare(`SELECT COUNT(*) FROM ?`); err == nil ||
		!strings.Contains(err.Error(), "expected table name") || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("expected positioned parse error for ? in table position, got %v", err)
	}
	// Non-contiguous explicit numbering is rejected at Prepare.
	if _, err := db.Prepare(`SELECT COUNT(*) FROM lineitem WHERE l_quantity < ?2`); err == nil ||
		!strings.Contains(err.Error(), "?1 is never used") {
		t.Fatalf("expected contiguity error, got %v", err)
	}
}

// TestProgressiveGroupByTyped: the GROUP BY rejection is a typed, wrapped
// ErrUnsupported, checkable with errors.Is.
func TestProgressiveGroupByTyped(t *testing.T) {
	db := testDB(t, 300)
	ch, wait := db.QueryProgressive(context.Background(),
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT) GROUP BY l_linenumber`)
	for range ch {
	}
	err := wait()
	if err == nil || !errors.Is(err, ErrUnsupported) {
		t.Fatalf("expected errors.Is(err, ErrUnsupported), got %v", err)
	}
}
