package gus

// Tests for QueryProgressive: online aggregation must converge to exactly
// the one-shot answer (bit-identical at any worker count), stop early when
// asked to, and die promptly when its context does.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/sampling-algebra/gus/internal/tpch"
)

func progressiveDB(t *testing.T, orders int) *DB {
	t.Helper()
	db := Open()
	if err := db.AttachTPCHConfig(tpch.Config{Orders: orders, Customers: orders/10 + 10, Parts: orders/40 + 10, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	return db
}

// drain collects every update of a stream and the terminal error.
func drain(ch <-chan Update, wait func() error) ([]Update, error) {
	var ups []Update
	for u := range ch {
		ups = append(ups, u)
	}
	return ups, wait()
}

func requireSameUpdateValue(t *testing.T, label string, u UpdateValue, v Value) {
	t.Helper()
	if u.Name != v.Name || u.Kind != v.Kind {
		t.Fatalf("%s: identity %q/%q vs %q/%q", label, u.Name, u.Kind, v.Name, v.Kind)
	}
	checks := []struct {
		what string
		x, y float64
	}{
		{"Value", u.Value, v.Value},
		{"Estimate", u.Estimate, v.Estimate},
		{"StdErr", u.StdErr, v.StdErr},
		{"CILow", u.CILow, v.CILow},
		{"CIHigh", u.CIHigh, v.CIHigh},
	}
	for _, c := range checks {
		if c.x != c.y {
			t.Fatalf("%s: %s: progressive %.17g vs one-shot %.17g", label, c.what, c.x, c.y)
		}
	}
	if u.Approximate != v.Approximate {
		t.Fatalf("%s: Approximate %v vs %v", label, u.Approximate, v.Approximate)
	}
}

// TestProgressiveFinalBitIdentical is the core acceptance contract: for
// any (query, seed, workers), running the stream to completion yields
// estimates, standard errors and intervals bit-identical to Query.
func TestProgressiveFinalBitIdentical(t *testing.T) {
	db := progressiveDB(t, 4000)
	queries := map[string]string{
		"sum-bernoulli": `SELECT SUM(l_extendedprice*(1.0-l_discount)) AS rev
			FROM lineitem TABLESAMPLE (30 PERCENT) WHERE l_extendedprice > 500.0`,
		"count-system": `SELECT COUNT(*) FROM lineitem TABLESAMPLE SYSTEM (20)`,
		"avg":          `SELECT AVG(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`,
		"quantiles": `SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) AS lo,
			QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) AS hi
			FROM lineitem TABLESAMPLE (40 PERCENT)`,
		"unsampled-filter": `SELECT SUM(l_tax) FROM lineitem WHERE l_discount > 0.02`,
	}
	for name, sql := range queries {
		for _, seed := range []uint64{1, 9} {
			for _, workers := range []int{1, 4} {
				opts := []Option{WithSeed(seed), WithWorkers(workers), WithWaveRows(1000)}
				want, err := db.Query(sql, opts...)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				ch, wait := db.QueryProgressive(context.Background(), sql, opts...)
				ups, err := drain(ch, wait)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(ups) < 2 {
					t.Fatalf("%s: only %d updates; waves did not engage", name, len(ups))
				}
				last := ups[len(ups)-1]
				if !last.Final || !last.Done || last.Reason != "complete" {
					t.Fatalf("%s: last update not a completed scan: %+v", name, last)
				}
				if last.FractionScanned != 1 {
					t.Fatalf("%s: final fraction %v", name, last.FractionScanned)
				}
				if len(last.Values) != len(want.Values) {
					t.Fatalf("%s: %d values vs %d", name, len(last.Values), len(want.Values))
				}
				for i := range want.Values {
					requireSameUpdateValue(t, name, last.Values[i], want.Values[i])
				}
				if last.SampleRows != want.SampleRows {
					t.Fatalf("%s: sample rows %d vs %d", name, last.SampleRows, want.SampleRows)
				}
				// Fractions must be strictly increasing and CIs well-formed.
				for i, u := range ups {
					if i > 0 && u.FractionScanned <= ups[i-1].FractionScanned {
						t.Fatalf("%s: fraction not increasing at wave %d", name, i)
					}
					for _, v := range u.Values {
						if !math.IsNaN(v.CILow) && v.CILow > v.CIHigh {
							t.Fatalf("%s: inverted CI at wave %d", name, i)
						}
					}
				}
			}
		}
	}
}

// TestProgressiveJoinFallback: shapes the wave executor cannot split still
// answer — as a single Final update identical to Query.
func TestProgressiveJoinFallback(t *testing.T) {
	db := progressiveDB(t, 1500)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (20 PERCENT),
		orders TABLESAMPLE (400 ROWS) WHERE l_orderkey = o_orderkey`
	want, err := db.Query(sql, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ch, wait := db.QueryProgressive(context.Background(), sql, WithSeed(3))
	ups, err := drain(ch, wait)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("expected a single fallback update, got %d", len(ups))
	}
	u := ups[0]
	if !u.Final || !u.Done || u.FractionScanned != 1 {
		t.Fatalf("fallback update not final: %+v", u)
	}
	requireSameUpdateValue(t, "join-fallback", u.Values[0], want.Values[0])
}

// TestProgressiveTargetCI: with a 1% relative-CI target on a TPC-H Q1
// revenue aggregate, the stream must stop after a strict subset of the
// data while actually delivering the target accuracy.
func TestProgressiveTargetCI(t *testing.T) {
	db := progressiveDB(t, 30000)
	sql := `SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue
		FROM lineitem TABLESAMPLE (90 PERCENT) WHERE l_quantity < 45.0`
	ch, wait := db.QueryProgressive(context.Background(), sql,
		WithSeed(7), WithTargetRelativeCI(0.01), WithWaveRows(8192))
	ups, err := drain(ch, wait)
	if err != nil {
		t.Fatal(err)
	}
	last := ups[len(ups)-1]
	if last.Reason != "target-ci" || !last.Done {
		t.Fatalf("stream did not stop on target: %+v", last)
	}
	if last.FractionScanned >= 1 {
		t.Fatalf("no early stop: scanned fraction %v", last.FractionScanned)
	}
	v := last.Values[0]
	half := (v.CIHigh - v.CILow) / 2
	if half > 0.01*math.Abs(v.Estimate) {
		t.Fatalf("half-width %v exceeds 1%% of estimate %v", half, v.Estimate)
	}
	// The early answer must be close to the truth (fixed seed: this is a
	// deterministic regression, not a flaky statistical assertion).
	exact, err := db.Exact(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Values[0].Value
	if rel := math.Abs(v.Estimate-truth) / truth; rel > 0.02 {
		t.Fatalf("early estimate off by %.2f%% (est %v, truth %v)", 100*rel, v.Estimate, truth)
	}
}

// TestProgressiveMaxFraction: the scan must stop at the I/O budget.
func TestProgressiveMaxFraction(t *testing.T) {
	db := progressiveDB(t, 8000)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	ch, wait := db.QueryProgressive(context.Background(), sql,
		WithSeed(1), WithMaxFraction(0.3), WithWaveRows(2048))
	ups, err := drain(ch, wait)
	if err != nil {
		t.Fatal(err)
	}
	last := ups[len(ups)-1]
	if last.Reason != "max-fraction" {
		t.Fatalf("reason %q", last.Reason)
	}
	if last.FractionScanned < 0.3 || last.FractionScanned >= 1 {
		t.Fatalf("fraction %v outside [0.3, 1)", last.FractionScanned)
	}
}

// TestProgressiveDeadline: an already-expired deadline stops the stream at
// the first wave boundary.
func TestProgressiveDeadline(t *testing.T) {
	db := progressiveDB(t, 8000)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	ch, wait := db.QueryProgressive(context.Background(), sql,
		WithSeed(1), WithDeadline(time.Nanosecond), WithWaveRows(2048))
	ups, err := drain(ch, wait)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("expected exactly one update, got %d", len(ups))
	}
	if ups[0].Reason != "deadline" {
		t.Fatalf("reason %q", ups[0].Reason)
	}
}

// TestProgressiveCancel: canceling the context ends the stream within a
// wave and surfaces the cancellation through wait.
func TestProgressiveCancel(t *testing.T) {
	db := progressiveDB(t, 8000)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, wait := db.QueryProgressive(ctx, sql, WithSeed(1), WithWaveRows(1024))
	var got int
	for u := range ch {
		got++
		if got == 1 {
			cancel()
		}
		_ = u
	}
	err := wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("wait() = %v, want context.Canceled", err)
	}
	if got > 3 {
		t.Fatalf("stream kept flowing after cancel: %d updates", got)
	}
}

// TestProgressiveGroupByUnsupported: GROUP BY streams fail fast with a
// clear error instead of silently degrading.
func TestProgressiveGroupByUnsupported(t *testing.T) {
	db := progressiveDB(t, 1500)
	ch, wait := db.QueryProgressive(context.Background(),
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT) GROUP BY l_linenumber`)
	ups, err := drain(ch, wait)
	if err == nil || len(ups) != 0 {
		t.Fatalf("expected GROUP BY rejection, got %d updates, err %v", len(ups), err)
	}
}

// TestQueryContextCancel: a one-shot query honors its context between
// partition waves.
func TestQueryContextCancel(t *testing.T) {
	db := progressiveDB(t, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx,
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext = %v, want context.Canceled", err)
	}
}

// TestProgressiveAbandonThenWait: breaking out of the channel early and
// calling wait stops the scan cleanly (nil error) and leaves the DB fully
// usable — the regression for the abandoned-stream deadlock.
func TestProgressiveAbandonThenWait(t *testing.T) {
	db := progressiveDB(t, 8000)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	ch, wait := db.QueryProgressive(context.Background(), sql, WithSeed(1), WithWaveRows(1024))
	<-ch // take one update, then abandon the channel without draining
	if err := wait(); err != nil {
		t.Fatalf("wait after abandoning the channel: %v", err)
	}
	tb, err := db.CreateTable("probe", Column{Name: "v", Type: Float})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT SUM(v) FROM probe`); err != nil {
		t.Fatal(err)
	}
}

// TestProgressiveStreamDoesNotBlockWriters: a live stream holds no
// catalog lock, so writes proceed mid-stream (and the stream keeps
// answering from its snapshot).
func TestProgressiveStreamDoesNotBlockWriters(t *testing.T) {
	db := progressiveDB(t, 8000)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	ch, wait := db.QueryProgressive(context.Background(), sql, WithSeed(1), WithWaveRows(1024))
	if _, ok := <-ch; !ok {
		t.Fatal("stream ended before first update")
	}
	wrote := make(chan error, 1)
	go func() {
		_, err := db.CreateTable("w", Column{Name: "v", Type: Float})
		wrote <- err
	}()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("catalog write blocked behind a live progressive stream")
	}
	if _, err := drain(ch, wait); err != nil {
		t.Fatal(err)
	}
}
