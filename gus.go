// Package gus is a sampling-based approximate query processor implementing
// "A Sampling Algebra for Aggregate Estimation" (Nirkhiwale, Dobra,
// Jermaine, PVLDB 6(12), 2013).
//
// It evaluates SQL aggregate queries whose tables carry TABLESAMPLE
// clauses, and — unlike a plain executor — returns statistically sound
// estimates of the aggregate over the FULL data, together with variance
// and confidence intervals. Internally, each concrete sampling operator is
// translated into a Generalized Uniform Sampling (GUS) quasi-operator,
// the plan is rewritten under SOA-equivalence until a single GUS sits below
// the aggregate (Propositions 4–9), and the SBox estimator applies
// Theorem 1 to the sample's lineage.
//
// Quick start:
//
//	db := gus.Open()
//	_ = db.AttachTPCH(0.01, 42)
//	res, _ := db.Query(`
//	    SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05),
//	           QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95)
//	    FROM lineitem TABLESAMPLE (10 PERCENT),
//	         orders TABLESAMPLE (1000 ROWS)
//	    WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`)
//	fmt.Println(res.Values[0].Value, res.Values[1].Value)
package gus

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sampling-algebra/gus/internal/batch"
	"github.com/sampling-algebra/gus/internal/core"
	"github.com/sampling-algebra/gus/internal/engine"
	"github.com/sampling-algebra/gus/internal/estimator"
	"github.com/sampling-algebra/gus/internal/expr"
	"github.com/sampling-algebra/gus/internal/hashtab"
	"github.com/sampling-algebra/gus/internal/lineage"
	"github.com/sampling-algebra/gus/internal/obs"
	"github.com/sampling-algebra/gus/internal/ops"
	"github.com/sampling-algebra/gus/internal/plan"
	"github.com/sampling-algebra/gus/internal/relation"
	"github.com/sampling-algebra/gus/internal/sampling"
	"github.com/sampling-algebra/gus/internal/sqlparse"
	"github.com/sampling-algebra/gus/internal/stats"
	"github.com/sampling-algebra/gus/internal/synopsis"
	"github.com/sampling-algebra/gus/internal/tpch"
)

// ColumnType enumerates table column types.
type ColumnType int

// Supported column types.
const (
	Int ColumnType = iota
	Float
	String
)

// Column declares one table column.
type Column struct {
	Name string
	Type ColumnType
}

// Interval selects the confidence-interval construction (§6.4).
type Interval int

const (
	// NormalInterval uses the optimistic normal approximation
	// (95% ⇒ μ̂ ± 1.96σ̂).
	NormalInterval Interval = iota
	// ChebyshevInterval uses the distribution-free Chebyshev bound
	// (95% ⇒ μ̂ ± 4.47σ̂).
	ChebyshevInterval
)

// DB is an in-memory database with estimation-aware query processing.
// Queries execute on the parallel partitioned engine (internal/engine).
//
// A DB is safe for concurrent use: Query, Exact, Robustness and
// QueryProgressive may run from many goroutines at once; catalog writes
// (CreateTable, LoadCSV, AttachTPCH, Table.Insert) serialize against
// in-flight queries via an internal RWMutex. A progressive stream holds
// the lock only while planning — its waves then run against an immutable
// snapshot, so even a long-lived stream never blocks writers.
//
// Query, Exact and QueryProgressive are backed by a bounded LRU plan cache
// keyed by normalized SQL (see stmt.go): repeated statements skip parsing,
// planning and kernel compilation. Catalog writes bump an internal
// generation counter that invalidates every cached plan. For explicit
// compile-once/execute-many control — including `?` parameter binding —
// use Prepare.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*relation.Relation
	workers int
	// gen counts catalog writes; plan-cache entries are tagged with it and
	// lookups discard entries from older generations.
	gen   atomic.Uint64
	plans *planCache
	// metrics is the DB-wide registry behind MetricsSnapshot/WriteMetrics;
	// hot-path slots are pre-resolved here and on each Stmt (see observe.go).
	metrics *dbMetrics
	// segs tracks the open mmap segment handles behind segment-mode tables
	// (see storage.go): Close unmaps them, the bytes-mapped gauge sums them.
	segs segState
	// calib aggregates CI-calibration observations — shadow audits and
	// ObserveAccuracy feeds — behind AccuracySnapshot and the
	// gus_ci_coverage_ratio gauge (see accuracy.go).
	calib *obs.Calibration
	// audit holds the optional shadow auditor's lifecycle (see accuracy.go).
	audit auditState
	// syns indexes the materialized sample synopses the planner may serve
	// sampled scans from (see synopsis.go). Guarded by mu, like tables.
	syns *synopsis.Registry
}

// Open creates an empty database. Options configure optional subsystems —
// e.g. WithAuditor starts the background CI-calibration auditor.
func Open(opts ...DBOption) *DB {
	db := &DB{tables: map[string]*relation.Relation{}, plans: newPlanCache(DefaultPlanCacheSize)}
	db.syns = synopsis.NewRegistry()
	db.calib = obs.NewCalibration(0)
	db.metrics = newDBMetrics(db)
	for _, fn := range opts {
		fn(db)
	}
	return db
}

// SetWorkers sets the default worker-pool width for subsequent queries
// (per-query WithWorkers overrides it). n ≤ 0 restores the default of
// runtime.GOMAXPROCS(0). Seeded results are bit-identical at any width.
func (db *DB) SetWorkers(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = 0
	}
	db.workers = n
}

// Table provides write access to one base table. Its methods serialize
// against queries on the owning DB.
type Table struct {
	db  *DB
	rel *relation.Relation
}

// CreateTable registers a new empty table.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("gus: table %q already exists", name)
	}
	rcols := make([]relation.Column, len(cols))
	for i, c := range cols {
		var k relation.Kind
		switch c.Type {
		case Int:
			k = relation.KindInt
		case Float:
			k = relation.KindFloat
		case String:
			k = relation.KindString
		default:
			return nil, fmt.Errorf("gus: unknown column type %d", c.Type)
		}
		rcols[i] = relation.Column{Name: c.Name, Kind: k}
	}
	schema, err := relation.NewSchema(rcols...)
	if err != nil {
		return nil, fmt.Errorf("gus: %w", err)
	}
	rel, err := relation.New(name, schema)
	if err != nil {
		return nil, fmt.Errorf("gus: %w", err)
	}
	db.tables[name] = rel
	db.gen.Add(1)
	return &Table{db: db, rel: rel}, nil
}

// Len returns the table's tuple count.
func (t *Table) Len() int {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.rel.Len()
}

// Insert appends one row; values must match the schema (int/int64,
// float64, string; ints widen to float columns).
func (t *Table) Insert(values ...any) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	tup, err := toTuple(t.rel.Schema(), values)
	if err != nil {
		return err
	}
	t.db.gen.Add(1)
	if err := t.rel.Append(tup); err != nil {
		return err
	}
	return t.db.maintainSynopses(t.rel)
}

// InsertWithID appends one row with an explicit lineage ID — e.g. the
// paper's l_orderkey*10+l_linenumber primary-key encoding (§6.2). IDs must
// be unique within the table.
func (t *Table) InsertWithID(id uint64, values ...any) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	tup, err := toTuple(t.rel.Schema(), values)
	if err != nil {
		return err
	}
	t.db.gen.Add(1)
	if err := t.rel.AppendWithID(lineage.TupleID(id), tup); err != nil {
		return err
	}
	return t.db.maintainSynopses(t.rel)
}

func toTuple(schema *relation.Schema, values []any) (relation.Tuple, error) {
	if len(values) != schema.Len() {
		return nil, fmt.Errorf("gus: %d values for %d columns", len(values), schema.Len())
	}
	tup := make(relation.Tuple, len(values))
	for i, v := range values {
		kind := schema.Col(i).Kind
		switch x := v.(type) {
		case int:
			if kind == relation.KindFloat {
				tup[i] = relation.Float(float64(x))
			} else {
				tup[i] = relation.Int(int64(x))
			}
		case int64:
			if kind == relation.KindFloat {
				tup[i] = relation.Float(float64(x))
			} else {
				tup[i] = relation.Int(x)
			}
		case float64:
			tup[i] = relation.Float(x)
		case string:
			tup[i] = relation.String_(x)
		default:
			return nil, fmt.Errorf("gus: unsupported value type %T for column %s", v, schema.Col(i).Name)
		}
		if tup[i].Kind() != kind {
			return nil, fmt.Errorf("gus: column %s expects %s, got %T", schema.Col(i).Name, kind, v)
		}
	}
	return tup, nil
}

// LoadCSV registers a table from a CSV file previously written by SaveCSV
// (or following its "#id,name:type,…" header convention).
func (db *DB) LoadCSV(name, path string) error {
	// Reject duplicate names before parsing the file, matching
	// CreateTable's error ordering; re-checked under the write lock in
	// case a concurrent load won the race.
	db.mu.RLock()
	_, dup := db.tables[name]
	db.mu.RUnlock()
	if dup {
		return fmt.Errorf("gus: table %q already exists", name)
	}
	rel, err := relation.LoadCSVFile(name, path)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return fmt.Errorf("gus: table %q already exists", name)
	}
	db.tables[name] = rel
	db.gen.Add(1)
	return nil
}

// SaveCSV writes a registered table to a CSV file.
func (db *DB) SaveCSV(name, path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("gus: unknown table %q", name)
	}
	return rel.SaveCSVFile(path)
}

// AttachTPCH generates and registers TPC-H-style lineitem, orders,
// customer and part tables at the given scale factor (1.0 ≈ 1.5M orders).
func (db *DB) AttachTPCH(scaleFactor float64, seed uint64) error {
	return db.AttachTPCHConfig(tpch.ScaleFactor(scaleFactor, seed))
}

// AttachTPCHConfig is AttachTPCH with full generator control.
func (db *DB) AttachTPCHConfig(cfg tpch.Config) error {
	tb, err := tpch.Generate(cfg)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range tb.All() {
		if _, dup := db.tables[r.Name()]; dup {
			return fmt.Errorf("gus: table %q already exists", r.Name())
		}
	}
	for _, r := range tb.All() {
		db.tables[r.Name()] = r
	}
	db.gen.Add(1)
	return nil
}

// TableNames lists registered tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns the write handle for a registered table — how rows are
// appended to tables that were not CreateTable'd in this process (loaded
// from CSV, generated, or attached from a segment). Segment-backed tables
// accept appends too: new rows go to a resident tail and merge with the
// mapped base image under snapshot isolation (the file is not modified).
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("gus: unknown table %q", name)
	}
	return &Table{db: db, rel: rel}, nil
}

// TableLen returns a table's cardinality.
func (db *DB) TableLen(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	if !ok {
		return 0, fmt.Errorf("gus: unknown table %q", name)
	}
	return rel.Len(), nil
}

type catalog struct{ db *DB }

func (c catalog) Table(name string) (*relation.Relation, bool) {
	r, ok := c.db.tables[name]
	return r, ok
}

// queryOptions collects per-query settings.
type queryOptions struct {
	seed            uint64
	level           float64
	interval        Interval
	maxVarianceRows int
	systemBlockSize int
	workers         int
	rowEngine       bool
	noZoneSkip      bool
	noSynopsis      bool
	// distinctLineage is derived per execution in runInner (never set by
	// an Option): true when the plan shape guarantees each base tuple ID
	// appears at most once per lineage slot, letting the estimator skip
	// duplicate grouping (see estimator.Options.DistinctLineage).
	distinctLineage bool

	// Progressive (QueryProgressive) settings; ignored by Query.
	targetRelCI float64
	deadline    time.Duration
	maxFraction float64
	waveRows    int

	// Prepared-statement execution state (set by Stmt, never by Options):
	// the bound parameter values and the statement's compile-once kernel
	// snapshot.
	args []relation.Value
	prep *engine.Prepared

	// trace receives per-stage spans when the caller attached one with
	// WithTrace (or the statement is EXPLAIN ANALYZE); nil on the common
	// path, where every span site reduces to one pointer test.
	trace *obs.Trace
	// sm holds the statement's pre-resolved per-shape metric slots and sql
	// its original text; both set by Stmt, never by Options.
	sm  *shapeMetrics
	sql string
}

// Option customizes Query.
type Option func(*queryOptions)

// WithSeed fixes the sampling RNG seed (default 1), making runs repeatable.
func WithSeed(seed uint64) Option { return func(o *queryOptions) { o.seed = seed } }

// WithConfidence sets the two-sided CI level (default 0.95).
func WithConfidence(level float64) Option { return func(o *queryOptions) { o.level = level } }

// WithInterval selects normal or Chebyshev intervals (default normal).
func WithInterval(iv Interval) Option { return func(o *queryOptions) { o.interval = iv } }

// WithVarianceSubsampling activates §7 sub-sampling: variance moments are
// estimated from about maxRows sample tuples (the paper suggests 10000)
// instead of the whole sample. The point estimate still uses every tuple.
func WithVarianceSubsampling(maxRows int) Option {
	return func(o *queryOptions) { o.maxVarianceRows = maxRows }
}

// WithSystemBlockSize sets the block size SYSTEM sampling simulates
// (default 32 tuples per block).
func WithSystemBlockSize(n int) Option { return func(o *queryOptions) { o.systemBlockSize = n } }

// WithWorkers sets this query's worker-pool width (default: the DB's
// SetWorkers value, falling back to runtime.GOMAXPROCS(0)). The engine's
// per-partition sub-seeding makes seeded results bit-identical at any
// width, so Workers only trades latency for cores.
func WithWorkers(n int) Option { return func(o *queryOptions) { o.workers = n } }

// WithTargetRelativeCI stops a progressive query once every SELECT item's
// confidence-interval half-width is at most eps times the magnitude of its
// estimate — e.g. 0.01 stops at ±1%. Ignored by Query.
func WithTargetRelativeCI(eps float64) Option {
	return func(o *queryOptions) { o.targetRelCI = eps }
}

// WithDeadline stops a progressive query at the first wave boundary after
// d of wall-clock time, whatever accuracy has been reached. Ignored by
// Query (use QueryContext with a deadline context to bound a one-shot
// query).
func WithDeadline(d time.Duration) Option {
	return func(o *queryOptions) { o.deadline = d }
}

// WithMaxFraction stops a progressive query once at least fraction f of
// the scanned relation has been read — a hard I/O budget. Values ≤ 0 or
// ≥ 1 disable the limit. Ignored by Query.
func WithMaxFraction(f float64) Option {
	return func(o *queryOptions) { o.maxFraction = f }
}

// WithWaveRows sets how many input rows a progressive query scans per
// wave (rounded up to whole engine partitions; default 8192). Smaller
// waves mean more frequent updates at slightly more overhead. Ignored by
// Query.
func WithWaveRows(n int) Option {
	return func(o *queryOptions) { o.waveRows = n }
}

// WithZoneSkipping enables or disables zone-map partition skipping for
// this query (default on). When a table carries zone maps (segment-backed
// tables always do), the fused scan kernel skips partitions whose min/max
// statistics prove the WHERE clause false for every row. Skipping never
// changes results — per-partition sub-seeded sampling makes a skipped
// partition's outcome independent of every other partition — so the switch
// exists for benchmarks and for verifying that invariant.
func WithZoneSkipping(on bool) Option { return func(o *queryOptions) { o.noZoneSkip = !on } }

// withRowEngine routes the query through the legacy row-at-a-time engine
// and the row-major estimator — the in-tree baseline that the vectorized
// columnar path is regression-tested and benchmarked against. Results are
// bit-identical to the default path.
func withRowEngine() Option { return func(o *queryOptions) { o.rowEngine = true } }

func (db *DB) buildOptions(opts []Option) queryOptions {
	o := queryOptions{seed: 1, level: 0.95, systemBlockSize: 32}
	for _, fn := range opts {
		fn(&o)
	}
	if o.workers <= 0 {
		db.mu.RLock()
		o.workers = db.workers
		db.mu.RUnlock()
	}
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Value is one SELECT-list result.
type Value struct {
	// Name is the output column name (alias, or a generated one).
	Name string
	// Kind is "SUM", "COUNT", "AVG", or "QUANTILE(...)".
	Kind string
	// Value is what the query returns: the estimate, or for QUANTILE
	// items the requested quantile of the estimator distribution.
	Value float64
	// Estimate is the unbiased point estimate of the true aggregate.
	Estimate float64
	// StdErr is the estimated standard deviation of the estimator.
	StdErr float64
	// CILow and CIHigh bound the aggregate at the query's confidence level.
	CILow, CIHigh float64
	// Approximate marks delta-method results (AVG), whose variance is a
	// first-order approximation rather than Theorem 1's exact form (§9).
	Approximate bool
	// Reliability grades the trustworthiness of the CI itself, "A"
	// (dependable) through "D" (decorative), from the variance
	// diagnostics: the relative standard error of the variance estimate,
	// the effective term count, and structural caveats (delta-method
	// variance, clamping). VarianceRSE is that relative standard error.
	// Both are set only when the query carries a trace (WithTrace or
	// EXPLAIN ANALYZE) — the diagnostics pass is gated off the untraced
	// hot path, which stays allocation-free.
	Reliability string
	VarianceRSE float64

	schema *lineage.Schema
	yhat   []float64
	cards  map[string]int
}

// Group is one GROUP BY bucket's results.
type Group struct {
	// Key is the group's value, rendered as text.
	Key string
	// Values holds one entry per SELECT item, estimated for this group.
	// Each group aggregate is SUM-like (f·1{group}), so every estimate
	// carries its own sound CI from the same top GUS.
	Values []Value
}

// Result is the outcome of an estimated query.
type Result struct {
	// Values holds one entry per SELECT item, in order. Empty for GROUP
	// BY queries (see Groups).
	Values []Value
	// Groups holds per-group results for GROUP BY queries, sorted by the
	// grouping column's value: numerically for Int/Float columns,
	// lexicographically for strings.
	Groups []Group
	// SampleRows is the number of tuples the sampled plan produced.
	SampleRows int
	// PlanText is the executed plan, rendered as a tree.
	PlanText string
	// TraceText is the SOA rewrite trace (Figure 4-style).
	TraceText string
	// GUSText prints the single top GUS operator's parameters.
	GUSText string
	// ExplainText is the rendered execution trace — the annotated plan
	// tree plus per-stage timings. Set only for EXPLAIN ANALYZE
	// statements; attach WithTrace and call Trace.Format for the same
	// text on any query.
	ExplainText string

	// scannedRows is the total base-table input cardinality, recorded for
	// the metrics layer without re-walking the plan.
	scannedRows int
	// skippedParts is how many input partitions zone maps let the engine
	// skip, recorded for the metrics layer.
	skippedParts int64
}

// Query parses, plans, executes and estimates a SQL aggregate query. It
// holds the catalog read-lock for its duration, so any number of queries
// may run concurrently while catalog writes wait.
func (db *DB) Query(sql string, opts ...Option) (*Result, error) {
	return db.QueryContext(context.Background(), sql, opts...)
}

// QueryContext is Query with cooperative cancellation: the engine checks
// ctx between partition waves and aborts with ctx's error, so a slow
// query never outlives a caller that has gone away. Cancellation yields
// an error, never partial results.
//
// The statement's plan comes from the DB's LRU plan cache (invalidated on
// catalog writes), so re-running the same SQL skips parse and plan. SQL
// containing `?` placeholders cannot run here — bind values through
// Prepare/PrepareCached instead.
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	o := db.buildOptions(opts)
	if path, ok := parseAttachSegment(sql); ok {
		o.sql = sql
		return db.execAttachSegment(ctx, path, o)
	}
	ppStart := time.Now()
	st, hit, err := db.prepareCached(sql)
	if err != nil {
		db.metrics.queriesErr.Inc()
		return nil, err
	}
	if o.trace == nil && st.tmpl.Explain() {
		o.trace = &obs.Trace{}
	}
	if o.trace != nil {
		recordPlanSpan(o.trace, time.Since(ppStart), hit)
	}
	return st.exec(ctx, nil, o, false)
}

// Exact runs the query with all sampling stripped: the true answer, for
// validation and experiments.
func (db *DB) Exact(sql string, opts ...Option) (*Result, error) {
	return db.ExactContext(context.Background(), sql, opts...)
}

// ExactContext is Exact with cooperative cancellation (see QueryContext).
// It shares the plan cache with Query.
func (db *DB) ExactContext(ctx context.Context, sql string, opts ...Option) (*Result, error) {
	o := db.buildOptions(opts)
	ppStart := time.Now()
	st, hit, err := db.prepareCached(sql)
	if err != nil {
		db.metrics.queriesErr.Inc()
		return nil, err
	}
	if o.trace == nil && st.tmpl.Explain() {
		o.trace = &obs.Trace{}
	}
	if o.trace != nil {
		recordPlanSpan(o.trace, time.Since(ppStart), hit)
	}
	return st.exec(ctx, nil, o, true)
}

// Robustness implements the §8 "database as a sample" analysis: the query
// must not contain TABLESAMPLE clauses; instead every base table is
// declared — via a GUS quasi-operator, with no execution-time sampling —
// to be a Bernoulli(survival) sample of a hypothetical complete database.
// Wide intervals flag queries whose answers are sensitive to losing a
// (1−survival) fraction of tuples.
func (db *DB) Robustness(sql string, survival float64, opts ...Option) (*Result, error) {
	if !(survival > 0 && survival <= 1) {
		return nil, fmt.Errorf("gus: survival rate %v outside (0,1]", survival)
	}
	o := db.buildOptions(opts)
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	for _, tr := range q.Tables {
		if tr.Kind != sqlparse.SampleNone {
			return nil, fmt.Errorf("gus: robustness analysis requires a query without TABLESAMPLE (table %q has one)", tr.Name)
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	planned, err := sqlparse.PlanQuery(q, catalog{db}, sqlparse.PlannerOptions{SystemBlockSize: o.systemBlockSize, Seed: o.seed})
	if err != nil {
		return nil, err
	}
	var wrapErr error
	planned.Root = plan.WrapScans(planned.Root, func(s *plan.Scan) plan.Node {
		alias := s.Rel.Name()
		if s.Alias != "" {
			alias = s.Alias
		}
		g, err := core.Bernoulli(alias, survival)
		if err != nil && wrapErr == nil {
			wrapErr = err
		}
		return &plan.GUS{Input: s, G: g}
	})
	if wrapErr != nil {
		return nil, wrapErr
	}
	return db.run(context.Background(), planned, o)
}

// run executes a planned query — on the vectorized columnar engine by
// default, or on the legacy row-at-a-time path under withRowEngine — and
// estimates every SELECT item. The two paths produce bit-identical
// results. Must be called with db.mu read-held.
//
// run itself is the observability shim around runInner: in-flight gauge,
// latency/rows/fraction metrics, outcome counters, and — when a trace is
// attached — the final annotated plan tree. Every update on the success
// path is an atomic on a pre-resolved slot, so the disabled-trace path
// stays allocation-free.
func (db *DB) run(ctx context.Context, planned *sqlparse.Planned, o queryOptions) (*Result, error) {
	m := db.metrics
	m.inFlight.Add(1)
	start := time.Now()
	res, err := db.runInner(ctx, planned, o)
	secs := time.Since(start).Seconds()
	m.inFlight.Add(-1)
	m.querySecs.Observe(secs)
	if o.sm != nil {
		o.sm.seconds.Observe(secs)
	}
	if err != nil {
		m.queriesErr.Inc()
		if o.sm != nil {
			o.sm.errors.Inc()
		}
		return nil, err
	}
	m.queriesOK.Inc()
	if o.sm != nil {
		o.sm.queries.Inc()
	}
	m.rowsScanned.Add(uint64(res.scannedRows))
	m.sampleRows.Add(uint64(res.SampleRows))
	m.partsSkipped.Add(uint64(res.skippedParts))
	if res.scannedRows > 0 {
		m.sampleFrac.Observe(float64(res.SampleRows) / float64(res.scannedRows))
	}
	if o.trace != nil {
		finishTrace(o.trace, planned.Root, o.sql, sqlparse.Normalize(o.sql))
	}
	return res, nil
}

func (db *DB) runInner(ctx context.Context, planned *sqlparse.Planned, o queryOptions) (*Result, error) {
	var compact int
	if o.trace != nil {
		compact = o.trace.Begin("gus-compact", "", -1)
	}
	analysis, err := plan.Analyze(planned.Root)
	if err != nil {
		return nil, err
	}
	if o.trace != nil {
		o.trace.End(compact, -1, -1)
		steps := len(analysis.Steps)
		o.trace.SetSpan(compact, func(s *obs.Span) {
			s.Label = fmt.Sprintf("%d rewrite steps", steps)
		})
	}
	eng := engine.New(engine.Config{Workers: o.workers, Context: ctx, Params: o.args, Prepared: o.prep, Trace: o.trace, DisableZoneSkip: o.noZoneSkip})
	var sample aggSample
	if o.rowEngine {
		rows, err := eng.ExecuteRows(planned.Root, o.seed)
		if err != nil {
			return nil, err
		}
		sample = aggSample{rows: rows}
	} else {
		b, err := eng.ExecuteBatch(planned.Root, o.seed)
		if err != nil {
			return nil, err
		}
		sample = aggSample{b: b}
		// One-shot execution: the sample batch is dead once every aggregate
		// over it has been evaluated (the Result keeps only scalars and
		// strings), so recycle its buffers. Release no-ops on batches that
		// alias relation snapshots (bare scans) rather than owning storage.
		defer b.Release()
	}
	cards := map[string]int{}
	scanned := 0
	// Samples drawn from a plan without set operations carry each base
	// tuple ID at most once per lineage slot (self-joins are rejected at
	// planning), so the estimator may group moments without hashing. SYSTEM
	// sampling is the other exception: it rewrites lineage to block IDs,
	// which repeat for every tuple of a kept block.
	o.distinctLineage = true
	plan.Walk(planned.Root, func(n plan.Node) {
		switch s := n.(type) {
		case *plan.Sample:
			if _, isBlock := s.Method.(*sampling.Block); isBlock {
				o.distinctLineage = false
			}
		case *plan.Scan:
			alias := s.Rel.Name()
			if s.Alias != "" {
				alias = s.Alias
			}
			// A synopsis-rewritten scan reads the synopsis's rows, but the
			// LOGICAL cardinality — what WOR variance prediction needs — is
			// the source table's, recorded on the scan at rewrite time.
			cards[alias] = s.Rel.Len()
			if s.FullRows > 0 {
				cards[alias] = s.FullRows
			}
			scanned += s.Rel.Len()
		case *plan.Union, *plan.Intersect:
			o.distinctLineage = false
		}
	})
	res := &Result{
		SampleRows:   sample.len(),
		PlanText:     plan.Format(planned.Root),
		TraceText:    analysis.FormatTrace(),
		GUSText:      analysis.G.String(),
		scannedRows:  scanned,
		skippedParts: eng.PartitionsSkipped(),
	}
	if planned.GroupBy != "" {
		gsp := o.trace.Begin("group", planned.GroupBy, -1)
		groups, err := sample.partitionBy(planned.GroupBy)
		if err != nil {
			return nil, err
		}
		o.trace.End(gsp, int64(sample.len()), int64(len(groups)))
		for _, grp := range groups {
			g := Group{Key: grp.key}
			for i, agg := range planned.Aggregates {
				v, err := db.evalAggregate(analysis.G, grp.sample, agg, i, o)
				if err != nil {
					return nil, fmt.Errorf("gus: group %q: %w", grp.key, err)
				}
				v.cards = cards
				g.Values = append(g.Values, *v)
			}
			res.Groups = append(res.Groups, g)
		}
		return res, nil
	}
	for i, agg := range planned.Aggregates {
		v, err := db.evalAggregate(analysis.G, sample, agg, i, o)
		if err != nil {
			return nil, err
		}
		v.cards = cards
		res.Values = append(res.Values, *v)
	}
	return res, nil
}

// aggSample is one executed sample in whichever representation the chosen
// engine path produced: a columnar batch (default) or row-major rows
// (legacy baseline). The estimator entry points keep the two bit-identical.
type aggSample struct {
	b    *batch.Batch
	rows *ops.Rows
}

func (s aggSample) len() int {
	if s.b != nil {
		return s.b.Len()
	}
	return s.rows.Len()
}

func (s aggSample) estimate(g *core.Params, f expr.Expr, eopts estimator.Options) (*estimator.Result, error) {
	if s.b != nil {
		return estimator.EstimateBatch(g, s.b, f, eopts)
	}
	return estimator.Estimate(g, s.rows, f, eopts)
}

func (s aggSample) ratio(g *core.Params, num, den expr.Expr, eopts estimator.Options) (*estimator.RatioResult, error) {
	if s.b != nil {
		return estimator.RatioBatch(g, s.b, num, den, eopts)
	}
	return estimator.Ratio(g, s.rows, num, den, eopts)
}

type sampleGroup struct {
	key    string
	sample aggSample
}

// partitionBy splits the sample into GROUP BY buckets, ordered by the
// grouping column's value (numerically for Int/Float columns — so keys
// come back 1, 2, 10 rather than "1", "10", "2" — lexicographically for
// strings). Restricting the sample to one group is exactly evaluating the
// SUM-like aggregate f·1{group=k} over the whole sample, so each bucket
// inherits the plan's top GUS unchanged.
func (s aggSample) partitionBy(col string) ([]sampleGroup, error) {
	if s.b != nil {
		return partitionBatchByColumn(s.b, col)
	}
	return partitionRowsByColumn(s.rows, col)
}

// groupOrder sorts first-seen group keys by their column value: numeric
// kinds numerically, strings lexicographically (Value.Compare semantics).
func groupOrder(keys []string, vals map[string]relation.Value) {
	sort.Slice(keys, func(a, b int) bool {
		c, err := vals[keys[a]].Compare(vals[keys[b]])
		if err != nil {
			// Mixed-kind keys cannot arise from a typed column; fall back
			// to the textual order for safety.
			return keys[a] < keys[b]
		}
		return c < 0
	})
}

// partitionBatchByColumn groups rows on an open-addressing grouper keyed
// directly by the typed column — dictionary codes for encoded strings,
// int64 values, float bit patterns (all NaNs one group) — with a full
// typed compare on hash collisions. Group identity matches the historical
// per-row AsString keys exactly (AsString is injective per kind except for
// NaN, which it collapses, as the bit-pattern identity does too), and the
// key string is rendered once per GROUP, not once per row.
func partitionBatchByColumn(b *batch.Batch, col string) ([]sampleGroup, error) {
	idx, ok := b.Schema.Index(col)
	if !ok {
		return nil, fmt.Errorf("gus: unknown GROUP BY column %q", col)
	}
	v := b.Cols[idx]
	g := hashtab.NewGrouper(64)
	var reps []int32   // first row of each group, first-seen order
	var sels [][]int32 // rows per group
	cand := 0
	eq := func(id int32) bool { return groupEqualAt(v, cand, int(reps[id])) }
	for i := 0; i < b.Len(); i++ {
		cand = i
		id, fresh := g.Get(groupHashAt(v, i), eq)
		if fresh {
			reps = append(reps, int32(i))
			sels = append(sels, nil)
		}
		sels[id] = append(sels[id], int32(i))
	}
	// Sort first-seen group order by column value — the same sort, over
	// the same initial sequence, with the same comparisons as groupOrder,
	// so the emitted group order is unchanged.
	order := make([]int, len(reps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, c int) bool {
		va, vc := b.ValueAt(int(reps[order[a]]), idx), b.ValueAt(int(reps[order[c]]), idx)
		cmp, err := va.Compare(vc)
		if err != nil {
			// Mixed-kind keys cannot arise from a typed column; fall back
			// to the textual order for safety.
			return va.AsString() < vc.AsString()
		}
		return cmp < 0
	})
	out := make([]sampleGroup, 0, len(order))
	for _, id := range order {
		out = append(out, sampleGroup{
			key:    b.ValueAt(int(reps[id]), idx).AsString(),
			sample: aggSample{b: b.Gather(sels[id])},
		})
	}
	return out, nil
}

// groupHashAt hashes row i of a column under GROUP BY identity: int64
// value, float bit pattern (NaNs collapsed), or the string (by dictionary
// lookup when encoded). Distinct from join-key hashing — FloatKey's
// int-normalization must NOT apply, because AsString keeps 42 (int) and
// "-0"/"0" style distinctions that grouping preserves.
func groupHashAt(v expr.Vec, i int) uint64 {
	switch v.Kind {
	case relation.KindInt:
		return hashtab.Mix(uint64(v.I[i]))
	case relation.KindFloat:
		f := v.F[i]
		if math.IsNaN(f) {
			f = math.NaN()
		}
		return hashtab.Mix(math.Float64bits(f))
	default:
		if v.Codes != nil {
			return v.Dict.Hashes[v.Codes[i]]
		}
		return hashtab.String(v.S[i])
	}
}

// groupEqualAt is groupHashAt's identity: the full compare deciding groups.
func groupEqualAt(v expr.Vec, i, j int) bool {
	switch v.Kind {
	case relation.KindInt:
		return v.I[i] == v.I[j]
	case relation.KindFloat:
		a, b := v.F[i], v.F[j]
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) && math.IsNaN(b)
		}
		return math.Float64bits(a) == math.Float64bits(b)
	default:
		if v.Codes != nil {
			return v.Codes[i] == v.Codes[j]
		}
		return v.S[i] == v.S[j]
	}
}

func partitionRowsByColumn(rows *ops.Rows, col string) ([]sampleGroup, error) {
	idx, ok := rows.Cols.Index(col)
	if !ok {
		return nil, fmt.Errorf("gus: unknown GROUP BY column %q", col)
	}
	buckets := map[string]*ops.Rows{}
	vals := map[string]relation.Value{}
	var keys []string
	for _, row := range rows.Data {
		v := row.Vals[idx]
		k := v.AsString()
		b, ok := buckets[k]
		if !ok {
			b = &ops.Rows{Cols: rows.Cols, LSch: rows.LSch}
			buckets[k] = b
			keys = append(keys, k)
			vals[k] = v
		}
		b.Data = append(b.Data, row)
	}
	groupOrder(keys, vals)
	out := make([]sampleGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, sampleGroup{key: k, sample: aggSample{rows: buckets[k]}})
	}
	return out, nil
}

func (db *DB) evalAggregate(g *core.Params, s aggSample, agg sqlparse.Aggregate, idx int, o queryOptions) (*Value, error) {
	name := agg.Alias
	if name == "" {
		name = fmt.Sprintf("col%d", idx+1)
	}
	eopts := estimator.Options{
		MaxVarianceRows: o.maxVarianceRows,
		Seed:            o.seed + 0x5b0c,
		Workers:         o.workers,
		DistinctLineage: o.distinctLineage,
		Trace:           o.trace,
		// Variance diagnostics ride along with tracing: the extra
		// read-only pass allocates, so it is gated off the untraced hot
		// path (never changing results either way — see the bit-identity
		// tests).
		Diagnostics: o.trace != nil,
	}
	f := agg.Arg
	if f == nil || agg.Kind == sqlparse.AggCount {
		f = expr.Int(1) // COUNT via SUM of 1 (§1)
	}
	v := &Value{Name: name, Kind: agg.Kind.String(), schema: g.Schema()}

	// QUANTILE answers follow the query's interval choice: normal
	// approximation by default, the distribution-free Cantelli bound under
	// WithInterval(ChebyshevInterval) — never a normal quantile glued to a
	// Chebyshev interval.
	ciMethod := estimator.Normal
	if o.interval == ChebyshevInterval {
		ciMethod = estimator.Chebyshev
	}

	switch agg.Kind {
	case sqlparse.AggSum, sqlparse.AggCount:
		er, err := s.estimate(g, f, eopts)
		if err != nil {
			return nil, err
		}
		v.Estimate = er.Estimate
		v.StdErr = er.StdDev()
		v.yhat = er.YHat
		if er.Diag != nil {
			v.Reliability, v.VarianceRSE = er.Diag.Grade, er.Diag.VarianceRSE
		}
		if agg.HasQuantile {
			v.Kind = fmt.Sprintf("QUANTILE(%s,%g)", agg.Kind, agg.Quantile)
			v.Value = er.QuantileWith(agg.Quantile, ciMethod)
		} else {
			v.Value = er.Estimate
		}
		v.CILow, v.CIHigh = er.CI(o.level, ciMethod)
	case sqlparse.AggAvg:
		est, sd, diag, err := avgDelta(g, s, agg.Arg, eopts)
		if err != nil {
			return nil, err
		}
		v.Estimate, v.StdErr, v.Approximate = est, sd, true
		if diag != nil {
			v.Reliability, v.VarianceRSE = diag.Grade, diag.VarianceRSE
		}
		if agg.HasQuantile {
			v.Kind = fmt.Sprintf("QUANTILE(AVG,%g)", agg.Quantile)
			switch ciMethod {
			case estimator.Chebyshev:
				v.Value = est + stats.CantelliQuantile(agg.Quantile)*sd
			default:
				v.Value = est + stats.NormalQuantile(agg.Quantile)*sd
			}
		} else {
			v.Value = est
		}
		switch ciMethod {
		case estimator.Chebyshev:
			h := stats.ChebyshevHalfWidth(o.level, sd)
			v.CILow, v.CIHigh = est-h, est+h
		default:
			h := stats.NormalHalfWidth(o.level, sd)
			v.CILow, v.CIHigh = est-h, est+h
		}
	default:
		return nil, fmt.Errorf("gus: unsupported aggregate %v", agg.Kind)
	}
	return v, nil
}

// avgDelta estimates AVG(f) = SUM(f)/COUNT(*) with a delta-method variance
// (§9: "good quality approximations can be provided, using for example the
// delta method"), delegating to the estimator's Ratio machinery, which
// estimates Cov(SUM, COUNT) from unbiased bilinear lineage moments.
func avgDelta(g *core.Params, s aggSample, f expr.Expr, eopts estimator.Options) (est, sd float64, diag *estimator.Diagnostics, err error) {
	if f == nil {
		return 0, 0, nil, fmt.Errorf("gus: AVG(*) is not valid SQL")
	}
	r, err := s.ratio(g, f, expr.Int(1), eopts)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("gus: AVG: %w", err)
	}
	return r.Estimate, r.StdDev(), r.Diag, nil
}

// Sampling describes one relation's sampling in a hypothetical design for
// PredictVariance.
type Sampling struct {
	// Kind is "bernoulli", "wor" or "none".
	Kind string
	// P is the Bernoulli probability (Kind "bernoulli").
	P float64
	// Rows is the WOR sample size (Kind "wor").
	Rows int
}

// Design maps base-table names (as used in the query) to hypothetical
// sampling methods.
type Design map[string]Sampling

// PredictVariance implements the §8 "choosing sampling parameters"
// application: using the unbiased ŷ_S moments recovered from THIS query's
// sample, it predicts the estimator variance that a different sampling
// design would have had on the same data — without drawing a new sample.
// Tables absent from the design are treated as unsampled.
func (v *Value) PredictVariance(design Design) (float64, error) {
	if v.yhat == nil {
		return 0, fmt.Errorf("gus: no moment estimates available for %s (only SUM/COUNT items support prediction)", v.Kind)
	}
	var g *core.Params
	for i := 0; i < v.schema.Len(); i++ {
		name := v.schema.Name(i)
		spec, ok := design[name]
		var p1 *core.Params
		var err error
		if !ok {
			p1 = core.Identity(lineage.MustSchema(name))
		} else {
			switch spec.Kind {
			case "bernoulli":
				p1, err = core.Bernoulli(name, spec.P)
			case "wor":
				n, found := v.cards[name]
				if !found {
					return 0, fmt.Errorf("gus: no cardinality recorded for %q", name)
				}
				k := spec.Rows
				if k > n {
					k = n
				}
				p1, err = core.WOR(name, k, n)
			case "none", "":
				p1 = core.Identity(lineage.MustSchema(name))
			default:
				return 0, fmt.Errorf("gus: unknown sampling kind %q", spec.Kind)
			}
			if err != nil {
				return 0, err
			}
		}
		if g == nil {
			g = p1
			continue
		}
		if g, err = core.Join(g, p1); err != nil {
			return 0, err
		}
	}
	// Report the same offending name on every run: the design map's
	// iteration order must not pick the error.
	names := make([]string, 0, len(design))
	for name := range design {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := v.schema.Index(name); !ok {
			return 0, fmt.Errorf("gus: design names %q, which the query does not touch", name)
		}
	}
	variance, err := g.Variance(v.yhat)
	if err != nil {
		return 0, err
	}
	if variance < 0 {
		variance = 0
	}
	return variance, nil
}
