package gus

import (
	"regexp"
	"strings"
	"testing"
)

// volatileTrace matches the fields of an EXPLAIN ANALYZE render that
// legitimately change run to run: wall-clock durations and the per-query
// trace ID. Everything else — plan tree, stage names and order, labels,
// row counts, partition counts, estimates in the wave table — must be
// deterministic for a fixed seed.
var volatileTrace = regexp.MustCompile(`query q[0-9]+|time=[^ \n]+|latency=[^ \n]+|total: [^\n]+`)

func normalizeExplain(s string) string {
	return volatileTrace.ReplaceAllString(s, "<volatile>")
}

// TestExplainAnalyzeGolden locks the structural determinism of the
// user-visible EXPLAIN ANALYZE rendering: repeated runs of the same
// seeded statement produce identical output once wall-clock fields are
// masked. Join-label formatting, span ordering, and row counts all come
// from code gusvet's determinism analyzer polices — this test is the
// behavioral lock on top of the static one.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := obsTestDB(t)
	for _, tc := range []struct {
		name, sql string
	}{
		{"point", obsPointSQL},
		{"join", obsJoinSQL},
		{"group", obsGroupSQL},
	} {
		// Warm the plan cache so every captured run renders the same
		// plan-cache=hit stage line.
		if _, err := db.Query("EXPLAIN ANALYZE "+tc.sql, WithSeed(7)); err != nil {
			t.Fatalf("%s warm-up: %v", tc.name, err)
		}
		res, err := db.Query("EXPLAIN ANALYZE "+tc.sql, WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		first := normalizeExplain(res.ExplainText)
		if !strings.Contains(first, "<volatile>") {
			t.Fatalf("%s: normalization matched nothing in:\n%s", tc.name, res.ExplainText)
		}
		for run := 0; run < 4; run++ {
			again, err := db.Query("EXPLAIN ANALYZE "+tc.sql, WithSeed(7))
			if err != nil {
				t.Fatalf("%s run %d: %v", tc.name, run, err)
			}
			if got := normalizeExplain(again.ExplainText); got != first {
				t.Fatalf("%s: EXPLAIN ANALYZE output not deterministic\n--- run %d ---\n%s\n--- first ---\n%s", tc.name, run, got, first)
			}
		}
	}

	// The join render carries its equi-join label on both build and probe
	// spans (built lazily, only when tracing — tracenil's contract).
	res, err := db.Query("EXPLAIN ANALYZE "+obsJoinSQL, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join-build", "join-probe", "fk = id"} {
		if !strings.Contains(res.ExplainText, want) {
			t.Fatalf("join EXPLAIN ANALYZE missing %q:\n%s", want, res.ExplainText)
		}
	}
}
