package gus

// Public-API tests for persistent segment storage: save→open→query must be
// bit-identical to querying the resident tables — across seeds, worker
// counts, zone-map skipping on/off, and progressive execution — corrupt
// files must surface as typed errors, and ATTACH SEGMENT must work as a
// statement.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// saveReopen saves db to a fresh directory and opens it back.
func saveReopen(t *testing.T, db *DB) *DB {
	t.Helper()
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { opened.Close() })
	return opened
}

// TestSegmentBitIdentity is the storage tentpole regression: every query
// must return bit-identical results whether the tables live on the Go heap
// or alias an mmap'd segment file, at any seed, worker count, and with
// zone-map skipping on or off.
func TestSegmentBitIdentity(t *testing.T) {
	resident := testDB(t, 1500)
	segment := saveReopen(t, resident)
	queries := []string{
		paperQuery1,
		`SELECT SUM(l_discount*(1.0-l_tax)) AS rev, COUNT(*) AS n
		 FROM lineitem TABLESAMPLE (15 PERCENT)
		 WHERE l_extendedprice > 100.0 AND l_quantity < 45.0`,
		`SELECT AVG(l_extendedprice) AS m FROM lineitem TABLESAMPLE (20 PERCENT)`,
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE SYSTEM (25)`,
		`SELECT SUM(o_totalprice) FROM orders TABLESAMPLE (500 ROWS)`,
		// Selective range over a clustered key: the shape zone maps prune.
		`SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (50 PERCENT) WHERE l_orderkey < 50`,
		`SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (25 PERCENT) GROUP BY l_linenumber`,
	}
	for qi, sql := range queries {
		for _, seed := range []uint64{1, 7, 42} {
			for _, w := range []int{1, 4, 13} {
				for _, skip := range []bool{true, false} {
					label := fmt.Sprintf("query %d seed %d workers %d skip %v", qi, seed, w, skip)
					opts := []Option{WithSeed(seed), WithWorkers(w), WithZoneSkipping(skip)}
					want, err := resident.Query(sql, opts...)
					if err != nil {
						t.Fatalf("%s: resident: %v", label, err)
					}
					got, err := segment.Query(sql, opts...)
					if err != nil {
						t.Fatalf("%s: segment: %v", label, err)
					}
					requireSameResult(t, label, want, got)
				}
			}
		}
	}
}

// TestSegmentProgressiveBitIdentity: a progressive stream over a segment
// backend must converge to the same Final update as over the resident one.
func TestSegmentProgressiveBitIdentity(t *testing.T) {
	resident := testDB(t, 1200)
	segment := saveReopen(t, resident)
	sql := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (30 PERCENT) WHERE l_quantity < 40.0`
	final := func(db *DB) Update {
		t.Helper()
		ch, wait := db.QueryProgressive(context.Background(), sql, WithSeed(5), WithWorkers(3), WithWaveRows(2048))
		var last Update
		for u := range ch {
			last = u
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
		if !last.Final {
			t.Fatal("stream did not reach Final")
		}
		return last
	}
	want, got := final(resident), final(segment)
	if want.Estimate != got.Estimate || want.StdErr != got.StdErr ||
		want.CILow != got.CILow || want.CIHigh != got.CIHigh || want.SampleRows != got.SampleRows {
		t.Fatalf("final updates differ:\nresident %+v\nsegment  %+v", want, got)
	}
}

// TestSegmentZoneSkipObservable: a provably-false range over the clustered
// order key must actually skip partitions on a segment backend (visible in
// the trace and the DB counter), and not with skipping disabled.
func TestSegmentZoneSkipObservable(t *testing.T) {
	resident := testDB(t, 4000) // ~3 partitions of lineitem at 4096 rows
	segment := saveReopen(t, resident)
	sql := `SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (50 PERCENT) WHERE l_orderkey < 10`
	skippedOf := func(opts ...Option) int {
		t.Helper()
		tr := &Trace{}
		if _, err := segment.Query(sql, append(opts, WithSeed(2), WithTrace(tr))...); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range tr.Spans {
			n += s.Skipped
		}
		return n
	}
	if n := skippedOf(); n == 0 {
		t.Fatal("no partitions skipped on a selective clustered-key range")
	}
	if n := skippedOf(WithZoneSkipping(false)); n != 0 {
		t.Fatalf("skipped %d partitions with skipping disabled", n)
	}
	var total float64
	for _, m := range segment.MetricsSnapshot() {
		if m.Name == "gus_partitions_skipped_total" {
			total = m.Value
		}
	}
	if total == 0 {
		t.Fatal("gus_partitions_skipped_total not incremented")
	}
}

// TestTablesInfo covers the Tables introspection both storage modes feed.
func TestTablesInfo(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("t", Column{"k", Int}, Column{"v", Float}, Column{"s", String}); err != nil {
		t.Fatal(err)
	}
	tb, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tb.Insert(i, float64(i)/2, fmt.Sprintf("s%d", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	infos := db.Tables()
	if len(infos) != 1 {
		t.Fatalf("tables = %d", len(infos))
	}
	in := infos[0]
	if in.Name != "t" || in.Rows != 10 || in.Storage != "resident" {
		t.Fatalf("info = %+v", in)
	}
	wantCols := []Column{{"k", Int}, {"v", Float}, {"s", String}}
	if len(in.Columns) != len(wantCols) {
		t.Fatalf("columns = %+v", in.Columns)
	}
	for i, c := range wantCols {
		if in.Columns[i] != c {
			t.Fatalf("column %d = %+v, want %+v", i, in.Columns[i], c)
		}
	}

	opened := saveReopen(t, db)
	infos = opened.Tables()
	if len(infos) != 1 || infos[0].Storage != "segment" || infos[0].Rows != 10 {
		t.Fatalf("reopened info = %+v", infos)
	}
}

// TestAttachSegmentStatement runs ATTACH SEGMENT through db.Query: a file
// path, a directory path, the duplicate-name error, and querying after.
func TestAttachSegmentStatement(t *testing.T) {
	src := testDB(t, 400)
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}

	db := Open()
	defer db.Close()
	res, err := db.Query(fmt.Sprintf("ATTACH SEGMENT '%s';", filepath.Join(dir, "orders.gusseg")))
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanText == "" {
		t.Fatal("no plan text from ATTACH SEGMENT")
	}
	n, err := db.TableLen("orders")
	if err != nil || n == 0 {
		t.Fatalf("orders after attach: n=%d err=%v", n, err)
	}
	if _, err := db.Query(fmt.Sprintf("attach segment '%s'", filepath.Join(dir, "orders.gusseg"))); err == nil {
		t.Fatal("duplicate attach did not fail")
	}
	// Attaching the directory picks up the remaining tables.
	dir2 := Open()
	defer dir2.Close()
	if _, err := dir2.Query(fmt.Sprintf("ATTACH SEGMENT '%s'", dir)); err != nil {
		t.Fatal(err)
	}
	want, err := src.Query(paperQuery1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dir2.Query(paperQuery1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "after ATTACH SEGMENT dir", want, got)
}

// TestCorruptSegmentTypedError: damaged files must surface ErrCorruptSegment
// (with file/offset detail via SegmentError), never a short table or panic.
func TestCorruptSegmentTypedError(t *testing.T) {
	src := testDB(t, 200)
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lineitem.gusseg")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":  raw[:len(raw)/2],
		"torn tail":  append(append([]byte{}, raw[:len(raw)-16]...), make([]byte, 16)...),
		"bad magic":  append([]byte("XUSSEG1\n"), raw[8:]...),
		"empty file": {},
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db := Open()
		err := db.AttachSegment(path)
		if err == nil {
			t.Fatalf("%s: attach succeeded", name)
		}
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("%s: error %v does not match ErrCorruptSegment", name, err)
		}
		var se *SegmentError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error %v carries no *SegmentError", name, err)
		}
		if se.Path != path || se.Offset < 0 {
			t.Fatalf("%s: SegmentError = %+v", name, se)
		}
		// The whole directory open must fail too — no silent short catalog.
		if _, err := OpenDir(dir); err == nil {
			t.Fatalf("%s: OpenDir ignored the corrupt file", name)
		}
		db.Close()
	}
}

// TestSegmentAppendAfterOpen: appends to a segment-backed table land in a
// resident tail, become visible to new queries, and never touch the file.
func TestSegmentAppendAfterOpen(t *testing.T) {
	src := Open()
	tb, err := src.CreateTable("t", Column{"k", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tb.Insert(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.gusseg")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wt, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if err := wt.Insert(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exact(`SELECT COUNT(*) AS n, SUM(v) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Value; got != 150 {
		t.Fatalf("count after append = %v, want 150", got)
	}
	if got, want := res.Values[1].Value, float64(149*150/2); got != want {
		t.Fatalf("sum after append = %v, want %v", got, want)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() || !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("append modified the segment file")
	}
	// Re-saving captures base + tail; reopening sees all 150 rows.
	dir2 := t.TempDir()
	if err := db.Save(dir2); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.TableLen("t"); n != 150 {
		t.Fatalf("reopened len = %d, want 150", n)
	}
}

// TestSegmentBytesMappedGauge: the mapped-bytes gauge reflects open
// segments and returns to zero after Close.
func TestSegmentBytesMappedGauge(t *testing.T) {
	src := testDB(t, 300)
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gauge := func() float64 {
		for _, m := range db.MetricsSnapshot() {
			if m.Name == "gus_segment_bytes_mapped" {
				return m.Value
			}
		}
		t.Fatal("gus_segment_bytes_mapped not registered")
		return 0
	}
	if g := gauge(); g <= 0 {
		t.Skipf("no mmap on this platform (gauge=%v)", g)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if g := gauge(); g != 0 {
		t.Fatalf("gauge after Close = %v", g)
	}
}

// TestOpenDirErrors: a directory without segments, and a missing one.
func TestOpenDirErrors(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("OpenDir on an empty dir succeeded")
	}
	if _, err := OpenDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("OpenDir on a missing dir succeeded")
	}
}
