// Persistent storage: the public API over internal/segment's mmap-backed
// columnar files. A DB can Save its catalog as one segment file per table,
// reopen a saved directory with OpenDir (columns alias the mapped file —
// no parse, no copy), and attach individual segments at runtime through
// AttachSegment or the `ATTACH SEGMENT '<path>'` statement. Segment-backed
// tables behave exactly like resident ones — same queries, same
// bit-identical results — and still accept appends: new rows land in a
// resident tail and merge with the mapped base under snapshot isolation.
package gus

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/sampling-algebra/gus/internal/relation"
	"github.com/sampling-algebra/gus/internal/segment"
	"github.com/sampling-algebra/gus/internal/synopsis"
)

// SegmentExt is the file extension Save writes and OpenDir/AttachSegmentDir
// look for.
const SegmentExt = segment.Ext

// segState tracks the open segment handles backing a DB's segment-mode
// tables — what Close unmaps and the gus_segment_bytes_mapped gauge sums.
// Guarded by its own mutex so the metrics exporter never contends with the
// catalog lock.
type segState struct {
	mu   sync.Mutex
	open []*segment.Table
}

func (s *segState) add(t *segment.Table) {
	s.mu.Lock()
	s.open = append(s.open, t)
	s.mu.Unlock()
}

func (s *segState) bytesMapped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, t := range s.open {
		n += t.BytesMapped()
	}
	return n
}

func (s *segState) closeAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, t := range s.open {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.open = nil
	return first
}

// TableInfo describes one registered table — what gusserve's GET /tables
// returns per entry.
type TableInfo struct {
	// Name is the table's registered name.
	Name string
	// Rows is the current tuple count (segment base plus resident tail).
	Rows int
	// Columns is the table's schema in column order.
	Columns []Column
	// Storage is "resident" (Go heap) or "segment" (mmap-backed file).
	Storage string
	// Synopses lists the materialized sample synopses attached to this
	// table (empty when none).
	Synopses []SynopsisInfo `json:",omitempty"`
}

// Tables describes every registered table, sorted by name.
func (db *DB) Tables() []TableInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]TableInfo, 0, len(db.tables))
	for name, rel := range db.tables {
		info := TableInfo{Name: name, Rows: rel.Len(), Storage: rel.StorageMode(), Synopses: db.synopsisInfosForLocked(name)}
		for _, c := range rel.Schema().Columns() {
			var t ColumnType
			switch c.Kind {
			case relation.KindInt:
				t = Int
			case relation.KindFloat:
				t = Float
			default:
				t = String
			}
			info.Columns = append(info.Columns, Column{Name: c.Name, Type: t})
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Save writes every registered table to dir as a segment file named
// <table>.gusseg, creating dir if needed. Files are written to a temporary
// name and renamed into place, so a crash mid-save never leaves a torn
// segment under the final name; an existing segment for a table is
// replaced. The saved image is the tables' state at call time (snapshot
// isolation: concurrent appends land in memory, not in the files).
func (db *DB) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gus: save: %w", err)
	}
	db.mu.RLock()
	rels := make([]*relation.Relation, 0, len(db.tables))
	for _, rel := range db.tables {
		rels = append(rels, rel)
	}
	db.mu.RUnlock()
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name() < rels[j].Name() })
	for _, rel := range rels {
		path := filepath.Join(dir, rel.Name()+segment.Ext)
		if _, err := segment.Write(path, rel); err != nil {
			return fmt.Errorf("gus: save table %q: %w", rel.Name(), err)
		}
	}
	return nil
}

// OpenDir opens a database from a directory of segment files (as written
// by Save): every *.gusseg file becomes a table named after the file. The
// open is O(metadata) — column data is mapped, not read — so a multi-GB
// directory opens in milliseconds. Corrupt files fail the open with an
// error matching ErrCorruptSegment. Call Close when done to unmap.
func OpenDir(dir string) (*DB, error) {
	db := Open()
	if err := db.AttachSegmentDir(dir); err != nil {
		db.Close()
		return nil, err
	}
	if len(db.tables) == 0 {
		return nil, fmt.Errorf("gus: no %s segments in %q", segment.Ext, dir)
	}
	return db, nil
}

// AttachSegment registers one segment file as a table named after the file
// (basename minus the .gusseg extension). The file's columns are mapped
// into memory and alias the file until Close. Truncated, torn or
// version-mismatched files are rejected with an error matching
// ErrCorruptSegment (and *SegmentError for the file/offset detail).
func (db *DB) AttachSegment(path string) error {
	name := strings.TrimSuffix(filepath.Base(path), segment.Ext)
	t, err := segment.Open(name, path)
	if err != nil {
		return err
	}
	db.mu.Lock()
	if _, dup := db.tables[name]; dup {
		db.mu.Unlock()
		t.Close()
		return fmt.Errorf("gus: table %q already exists", name)
	}
	db.tables[name] = t.Rel
	db.gen.Add(1)
	db.mu.Unlock()
	db.segs.add(t)
	return nil
}

// AttachSegmentDir attaches every *.gusseg file in dir, in name order. The
// first failure stops the walk and is returned; tables attached before it
// stay attached.
func (db *DB) AttachSegmentDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("gus: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segment.Ext) {
			continue
		}
		if err := db.AttachSegment(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// Close unmaps every attached segment and empties the catalog. The DB and
// any Relation/Stmt derived from it must not be used afterwards — mapped
// column memory is gone. A DB with no attached segments may be Closed too
// (it just clears the catalog). Close is not concurrency-safe against
// in-flight queries; stop them first.
func (db *DB) Close() error {
	// Stop the shadow auditor before tearing down the catalog: its replays
	// take the read-lock and touch mapped column memory.
	db.DisableAuditor()
	db.mu.Lock()
	db.tables = map[string]*relation.Relation{}
	db.syns = synopsis.NewRegistry()
	db.gen.Add(1)
	db.mu.Unlock()
	return db.segs.closeAll()
}

// parseAttachSegment recognizes the `ATTACH SEGMENT '<path>'` statement
// (case-insensitive keywords, optional trailing semicolon) and returns the
// quoted path. It is a statement-level command, not part of the query
// grammar, so it is intercepted before parsing.
func parseAttachSegment(sql string) (string, bool) {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	s = strings.TrimSpace(s)
	const kw1, kw2 = "ATTACH", "SEGMENT"
	if len(s) < len(kw1) || !strings.EqualFold(s[:len(kw1)], kw1) {
		return "", false
	}
	s = strings.TrimSpace(s[len(kw1):])
	if len(s) < len(kw2) || !strings.EqualFold(s[:len(kw2)], kw2) {
		return "", false
	}
	s = strings.TrimSpace(s[len(kw2):])
	if len(s) < 2 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return "", false
	}
	path := s[1 : len(s)-1]
	if path == "" || strings.Contains(path, "'") {
		return "", false
	}
	return path, true
}

// execAttachSegment runs an intercepted ATTACH SEGMENT statement: a file
// path attaches one segment, a directory attaches every segment in it.
func (db *DB) execAttachSegment(_ context.Context, path string, o queryOptions) (*Result, error) {
	sp := o.trace.Begin("attach-segment", path, -1)
	before := len(db.TableNames())
	fi, err := os.Stat(path)
	if err == nil && fi.IsDir() {
		err = db.AttachSegmentDir(path)
	} else {
		err = db.AttachSegment(path)
	}
	if err != nil {
		db.metrics.queriesErr.Inc()
		return nil, err
	}
	names := db.TableNames()
	o.trace.End(sp, -1, int64(len(names)-before))
	if o.trace != nil {
		o.trace.SetPlanTree(fmt.Sprintf("AttachSegment(%s)", path))
		o.trace.Finish(o.sql, "attach segment ?")
	}
	res := &Result{PlanText: fmt.Sprintf("AttachSegment(%s): %d tables attached", path, len(names)-before)}
	if o.trace != nil {
		res.ExplainText = o.trace.Format()
	}
	return res, nil
}
