GO ?= go
BIN := bin

.PHONY: all build test race lint vet gusvet fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own analyzer suite (gusvet, always available —
# it builds from this tree) and then the third-party linters when their
# pinned binaries are installed. CI installs them; locally the targets
# degrade to a notice instead of failing on a missing tool.
lint: vet gusvet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2023.1.7)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@v1.1.3)"; \
	fi

vet:
	$(GO) vet ./...

# gusvet builds the in-tree analyzer driver and runs it over every
# package through the standard vettool protocol.
gusvet: $(BIN)/gusvet
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/gusvet ./...

$(BIN)/gusvet: FORCE
	$(GO) build -o $(BIN)/gusvet ./cmd/gusvet

FORCE:

# fuzz-smoke gives each checked-in fuzz target a short coverage-guided
# run on top of its seed corpus (the seeds alone run in plain `make test`).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=15s ./internal/sqlparse
	$(GO) test -run=^$$ -fuzz=FuzzSegmentDecode -fuzztime=15s ./internal/segment
	$(GO) test -run=^$$ -fuzz=FuzzSubsumption -fuzztime=15s ./internal/synopsis

clean:
	rm -rf $(BIN)
