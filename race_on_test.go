//go:build race

package gus

// raceEnabled reports whether the race detector is compiled in. The tight
// allocation-count guard skips under it: the detector makes sync.Pool drop
// a random fraction of Puts (to widen interleavings), so pooled buffers
// reallocate nondeterministically and allocs-per-run is not a stable
// signal. The coarser budget in alloc_test.go has the headroom to absorb
// that and still runs under -race.
const raceEnabled = true
