module github.com/sampling-algebra/gus

go 1.21
