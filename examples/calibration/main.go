// Calibration observability end to end: can the estimator's error bars
// be believed, and how would you find out in production? This example
// (1) reads the per-query CI-reliability grade the variance diagnostics
// attach to traced runs, (2) runs the shadow auditor — background
// replays of hot query shapes, sampled and exact — and (3) reads the
// resulting empirical-coverage report from db.AccuracySnapshot, the same
// data gusserve serves at GET /accuracy. None of it perturbs query
// results: audited/traced runs are bit-identical to plain ones.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	defer db.Close()

	// Two tables with the same schema but very different tails: sums of
	// uniform values are easy to estimate, sums dominated by a few huge
	// lognormal outliers are where claimed CIs quietly stop being true.
	rng := rand.New(rand.NewSource(1))
	easy, err := db.CreateTable("easy", gus.Column{Name: "v", Type: gus.Float})
	if err != nil {
		log.Fatal(err)
	}
	hard, err := db.CreateTable("hard", gus.Column{Name: "v", Type: gus.Float})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := easy.Insert(1 + rng.Float64()); err != nil {
			log.Fatal(err)
		}
		if err := hard.Insert(math.Exp(3 * rng.NormFloat64())); err != nil {
			log.Fatal(err)
		}
	}

	// 1. The per-query grade: attach a trace and every Value carries a
	// CI-reliability letter (A best) from the fourth-moment diagnostics —
	// the relative standard error of the variance estimate itself. The
	// skewed table earns its bad grade from the sample alone, before any
	// exact answer exists to compare against.
	for _, table := range []string{"easy", "hard"} {
		sql := fmt.Sprintf(`SELECT SUM(v) FROM %s TABLESAMPLE BERNOULLI(5)`, table)
		res, err := db.Query(sql, gus.WithSeed(7), gus.WithTrace(&gus.Trace{}))
		if err != nil {
			log.Fatal(err)
		}
		v := res.Values[0]
		fmt.Printf("%-4s: SUM ≈ %11.0f  95%% CI [%11.0f, %11.0f]  reliability %s (rse(V)=%.2g)\n",
			table, v.Estimate, v.CILow, v.CIHigh, v.Reliability, v.VarianceRSE)
	}

	// 2. The shadow auditor: with the two shapes now hot in the shape
	// registry, enable background replays. Each audit re-runs one shape
	// with a fresh seed AND exactly, then records whether the claimed
	// interval covered the truth. Budget-capped; off by default.
	if err := db.EnableAuditor(gus.AuditorOptions{
		Interval:             time.Millisecond,
		MaxFractionPerMinute: 1e6, // uncapped for the demo; ~0.5 in production
		Seed:                 99,
	}); err != nil {
		log.Fatal(err)
	}
	for db.AccuracySnapshot().Observations < 60 {
		time.Sleep(5 * time.Millisecond)
	}
	db.DisableAuditor()

	// 3. The verdict: empirical coverage with a 95% Wilson interval,
	// overall and per shape. A shape whose interval excludes the nominal
	// 0.95 is measurably miscalibrated — expect the lognormal one.
	rep := db.AccuracySnapshot()
	fmt.Printf("\naudits: %d replays, %d observations, %d rows scanned\n",
		rep.Auditor.Audits, rep.Observations, rep.Auditor.RowsScanned)
	fmt.Printf("overall coverage %.2f, Wilson [%.2f, %.2f]\n",
		rep.CoverageRate, rep.CoverageLow, rep.CoverageHigh)
	for _, s := range rep.Shapes {
		verdict := "calibrated"
		if s.CoverageHigh < 0.95 {
			verdict = "MISCALIBRATED (interval excludes 0.95)"
		}
		fmt.Printf("  %-60s %3d/%3d covered  Wilson [%.2f, %.2f]  %s\n",
			s.Shape, s.Covered, s.Observations, s.CoverageLow, s.CoverageHigh, verdict)
	}
}
