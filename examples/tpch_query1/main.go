// The paper's running example, end to end: Query 1 (§1) with its
// QUANTILE view form, over generated TPC-H data. Prints the SOA rewrite
// trace (Figure 2) showing the two sampling operators collapsing into the
// single top GUS quasi-operator of Example 3.
package main

import (
	"fmt"
	"log"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	// Scale factor 0.005 ≈ 7500 orders / ~30000 lineitems.
	if err := db.AttachTPCH(0.005, 42); err != nil {
		log.Fatal(err)
	}

	// §1's CREATE VIEW APPROX(lo, hi) body: a [0.05, 0.95] confidence
	// bound on the true answer, computed from the user-specified samples.
	const view = `
		SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) AS lo,
		       QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) AS hi,
		       SUM(l_discount*(1.0-l_tax)) AS est
		FROM lineitem TABLESAMPLE (10 PERCENT),
		     orders TABLESAMPLE (1000 ROWS)
		WHERE l_orderkey = o_orderkey AND
		      l_extendedprice > 100.0`

	res, err := db.Query(view, gus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan:")
	fmt.Print(res.PlanText)
	fmt.Println("\nSOA rewrite (Figure 2 a → c):")
	fmt.Print(res.TraceText)
	fmt.Println("\ntop GUS operator:", res.GUSText)

	lo, hi, est := res.Values[0].Value, res.Values[1].Value, res.Values[2]
	fmt.Printf("\nAPPROX view: lo = %.4f, hi = %.4f (estimate %.4f ± %.4f)\n",
		lo, hi, est.Estimate, est.StdErr)

	exact, err := db.Exact(view)
	if err != nil {
		log.Fatal(err)
	}
	truth := exact.Values[2].Value
	fmt.Printf("true answer: %.4f — inside [lo,hi]: %v\n", truth, lo <= truth && truth <= hi)
}
