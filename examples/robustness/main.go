// Robustness analysis (§8 "database as a sample"): treat the stored
// database as a Bernoulli sample of a hypothetical complete database and
// ask how sensitive each query's answer is to losing a small fraction of
// tuples. No sampling is executed — a GUS quasi-operator is placed above
// every base table purely for analysis.
package main

import (
	"fmt"
	"log"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.003, 5); err != nil {
		log.Fatal(err)
	}

	queries := []struct{ name, sql string }{
		{"total revenue",
			`SELECT SUM(l_extendedprice*(1.0-l_discount)) FROM lineitem`},
		{"revenue via join",
			`SELECT SUM(l_extendedprice) FROM lineitem, orders WHERE l_orderkey = o_orderkey`},
		{"rare tuples only",
			`SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity = 50`},
	}

	fmt.Println("If 1% of tuples were silently lost (survival 99%), how far could answers move?")
	fmt.Printf("\n%-18s %-14s %-22s %-10s\n", "query", "answer", "99%-survival 95% CI", "±rel")
	for _, q := range queries {
		res, err := db.Robustness(q.sql, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		v := res.Values[0]
		rel := (v.CIHigh - v.CILow) / 2 / v.Estimate
		fmt.Printf("%-18s %-14.5g [%.5g, %.5g]   %6.3f%%\n",
			q.name, v.Estimate, v.CILow, v.CIHigh, 100*rel)
	}

	fmt.Println("\nSensitivity vs loss rate for the rare-tuple query:")
	fmt.Printf("%-10s %-10s\n", "survival", "±rel")
	for _, surv := range []float64{0.999, 0.99, 0.95, 0.9} {
		res, err := db.Robustness(queries[2].sql, surv)
		if err != nil {
			log.Fatal(err)
		}
		v := res.Values[0]
		fmt.Printf("%-10g %8.3f%%\n", surv, 100*(v.CIHigh-v.CILow)/2/v.Estimate)
	}
	fmt.Println("\nA wide interval flags a non-robust query: its answer depends heavily on")
	fmt.Println("individual tuples, so data loss (or dirty data) would move it materially.")
}
