// Materialized synopses end to end: build a Bernoulli synopsis, watch the
// planner serve a subsumable sampled query from it via the Prop. 8
// residual rewrite, append rows and see the synopsis maintained in place,
// hit every fallback condition on purpose, A/B the synopsis-served
// estimate against the full-scan plan, and drop the synopsis.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.05, 42); err != nil { // ~300k lineitems
		log.Fatal(err)
	}
	n, _ := db.TableLen("lineitem")
	fmt.Printf("lineitem: %d rows\n", n)

	// 1. Materialize a 2% Bernoulli sample of lineitem. The build runs the
	// same fused scan→sample pipeline queries use, so the synopsis's GUS
	// claim — Bernoulli(lineitem, 0.02) — is exact, not approximate.
	if err := db.CreateSynopsis(gus.SynopsisSpec{Name: "ls", Table: "lineitem", Rate: 0.02}); err != nil {
		log.Fatal(err)
	}
	info := db.Synopses()[0]
	fmt.Printf("built %s: %s, %d of %d rows (%.0f KiB)\n\n",
		info.Name, info.GUS, info.Rows, info.SourceRows, float64(info.Bytes)/1024)

	// 2. A p=1% query is subsumed by the q=2% synopsis: the planner scans
	// the synopsis and composes a Bernoulli(p/q = 0.5) residual, which by
	// Prop. 8 is exactly Bernoulli(1%) over the base table. EXPLAIN
	// ANALYZE marks the served scan and records the decision span.
	const sql = `SELECT SUM(l_extendedprice*(1.0-l_discount)) FROM lineitem TABLESAMPLE BERNOULLI(1)`
	res, err := db.Query("EXPLAIN ANALYZE "+sql, gus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(res.ExplainText, "\n") {
		if strings.Contains(line, "synopsis") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
	fmt.Println()

	// 3. A/B: the same query with synopsis-serving off runs the full-scan
	// plan. Both are unbiased Bernoulli(1%) estimates of the same total —
	// the synopsis trades nothing for its speedup. (Latencies here are
	// single-shot and small-scale; BENCH_synopsis.json holds the measured
	// contract, ≥10× at p=1% on the ~1M-row set.)
	run := func(opts ...gus.Option) (float64, float64, time.Duration) {
		t0 := time.Now()
		r, err := db.Query(sql, opts...)
		if err != nil {
			log.Fatal(err)
		}
		v := r.Values[0]
		return v.Estimate, v.CIHigh - v.Estimate, time.Since(t0)
	}
	est, half, d := run(gus.WithSeed(7))
	fmt.Printf("synopsis-served: %14.2f ± %13.2f  (%v)\n", est, half, d)
	est, half, d = run(gus.WithSeed(7), gus.WithSynopses(false))
	fmt.Printf("full-scan plan:  %14.2f ± %13.2f  (%v)\n\n", est, half, d)

	// 4. Appends maintain the synopsis: each new row keeps with
	// probability q under the synopsis's own sub-seeded draw — identical
	// membership to a from-scratch rebuild, so the claim stays exact and
	// the synopsis keeps serving without a refresh.
	li, err := db.Table("lineitem")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := li.Insert(int64(900000+i), int64(1), int64(i%200), 1.0, 500.0+float64(i%100), 0.04, 0.02); err != nil {
			log.Fatal(err)
		}
	}
	info = db.Synopses()[0]
	fmt.Printf("after 5000 appends: %d rows covering %d source rows, stale=%v\n\n",
		info.Rows, info.SourceRows, info.Stale)

	// 5. Fallbacks are explicit, never silent degradation. Each miss
	// reason lands in gus_synopsis_misses_total{reason}:
	//   rate   — p=5% exceeds q=2%; Prop. 8 needs p ≤ q.
	//   method — WOR inclusions are negatively correlated, not Bernoulli.
	//   disabled — WithSynopses(false), the A/B switch above.
	if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE BERNOULLI(5)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (1000 ROWS)`); err != nil {
		log.Fatal(err)
	}
	for _, m := range db.MetricsSnapshot() {
		if strings.HasPrefix(m.Name, "gus_synopsis_") && m.Value > 0 {
			fmt.Printf("%-32s %-10q %g\n", m.Name, m.Label, m.Value)
		}
	}
	fmt.Println()

	// 6. Drop the synopsis; the same query plans a full scan again.
	if err := db.DropSynopsis("ls"); err != nil {
		log.Fatal(err)
	}
	res, err = db.Query("EXPLAIN ANALYZE "+sql, gus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	served := strings.Contains(res.ExplainText, "synopsis=")
	fmt.Printf("after DropSynopsis: served from synopsis = %v\n", served)
}
