// Persistent storage end to end: save a database as mmap-ready segment
// files, reopen it without re-parsing anything, attach segments through
// SQL, append to a segment-backed table (the file stays untouched), and
// watch zone maps skip partitions a WHERE clause provably rejects —
// with results bit-identical to the unskipped scan.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	dir, err := os.MkdirTemp("", "gus-storage-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Build a database and persist it: one <table>.gusseg per table,
	// written via .tmp + fsync + atomic rename.
	src := gus.Open()
	if err := src.AttachTPCH(0.01, 42); err != nil { // ~15k orders
		log.Fatal(err)
	}
	if err := src.Save(dir); err != nil {
		log.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		info, _ := e.Info()
		fmt.Printf("saved %-18s %9d bytes\n", e.Name(), info.Size())
	}

	// 2. Cold open: OpenDir mmaps each segment and aliases column vectors
	// straight into the mapping — no parsing, no copying.
	db, err := gus.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	for _, t := range db.Tables() {
		fmt.Printf("opened %-10s %7d rows, storage=%s\n", t.Name, t.Rows, t.Storage)
	}

	// 3. Zone-map skipping: l_orderkey ascends with row order, so a range
	// predicate lets the footer's per-partition min/max stats prove most
	// partitions empty. The trace shows how many the engine never touched.
	sql := `SELECT SUM(l_quantity) AS q
		FROM lineitem TABLESAMPLE (50 PERCENT)
		WHERE l_orderkey < 500`
	tr := &gus.Trace{}
	res, err := db.Query(sql, gus.WithSeed(7), gus.WithTrace(tr))
	if err != nil {
		log.Fatal(err)
	}
	parts, skipped := 0, 0
	for _, s := range tr.Spans {
		if s.Partitions > parts {
			parts = s.Partitions
		}
		skipped += s.Skipped
	}
	fmt.Printf("\nq ≈ %.1f ± %.1f   (skipped %d of %d partitions)\n",
		res.Values[0].Estimate, res.Values[0].StdErr, skipped, parts)

	// Skipping never changes results: each partition samples from its own
	// sub-seeded RNG, so pruning an all-false partition cannot perturb any
	// other partition's draw. Verify against the unskipped scan.
	noskip, err := db.Query(sql, gus.WithSeed(7), gus.WithZoneSkipping(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-identical without skipping: %v\n",
		res.Values[0].Estimate == noskip.Values[0].Estimate)

	// 4. ATTACH SEGMENT through SQL — same machinery, one statement.
	db2 := gus.Open()
	if _, err := db2.Query(fmt.Sprintf("ATTACH SEGMENT '%s'",
		filepath.Join(dir, "lineitem.gusseg"))); err != nil {
		log.Fatal(err)
	}
	n, _ := db2.TableLen("lineitem")
	fmt.Printf("\nATTACH SEGMENT: lineitem with %d rows\n", n)

	// 5. Appends land in a resident tail; the mapped file is never
	// modified in place. Re-Save to persist the merged table.
	li, err := db.Table("lineitem")
	if err != nil {
		log.Fatal(err)
	}
	before := li.Len()
	if err := li.Insert(999999, 1, 1, 42.0, 1000.0, 0.05, 0.08); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(filepath.Join(dir, "lineitem.gusseg"))
	fmt.Printf("appended: %d -> %d rows in memory; %s on disk unchanged (%d bytes)\n",
		before, li.Len(), "lineitem.gusseg", st.Size())
}
