// Load shedding (§8 "Data Streaming and Load Shedding"): a stream system
// must drop tuples to keep up, and wants the largest shed rate whose
// estimation error stays acceptable. Using one buffered window as a pilot,
// the GUS machinery predicts the error at every candidate rate — across a
// JOIN of two streams, which single-relation shedding theory cannot do.
package main

import (
	"fmt"
	"log"
	"math"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	// One buffered window of the two streams (fact: lineitem events,
	// dimension: orders events).
	if err := db.AttachTPCH(0.003, 23); err != nil {
		log.Fatal(err)
	}

	// Pilot over the fully retained window.
	pilot, err := db.Query(`
		SELECT SUM(l_extendedprice)
		FROM lineitem TABLESAMPLE (100 PERCENT), orders
		WHERE l_orderkey = o_orderkey`,
		gus.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	v := pilot.Values[0]
	fmt.Printf("window aggregate: %.5g over %d joined tuples\n\n", v.Estimate, pilot.SampleRows)

	// Capacity model: the system can process only 30% of arriving events;
	// find shed rates (p_l on lineitem events, p_o on orders events) whose
	// predicted relative error is lowest subject to p_l·w_l + p_o·w_o ≤ cap.
	liLen, _ := db.TableLen("lineitem")
	ordLen, _ := db.TableLen("orders")
	capTuples := 0.3 * float64(liLen+ordLen)
	fmt.Printf("capacity: %0.f of %d window tuples (30%%)\n\n", capTuples, liLen+ordLen)
	fmt.Printf("%-12s %-12s %-12s %-12s %s\n", "keep l", "keep o", "kept tuples", "pred. σ", "rel. error")

	type choice struct {
		pl, po, sigma float64
	}
	best := choice{sigma: math.Inf(1)}
	for _, pl := range []float64{0.1, 0.2, 0.3, 0.5} {
		for _, po := range []float64{0.1, 0.2, 0.3, 0.5, 1.0} {
			kept := pl*float64(liLen) + po*float64(ordLen)
			if kept > capTuples {
				continue
			}
			pv, err := v.PredictVariance(gus.Design{
				"lineitem": {Kind: "bernoulli", P: pl},
				"orders":   {Kind: "bernoulli", P: po},
			})
			if err != nil {
				log.Fatal(err)
			}
			sigma := math.Sqrt(pv)
			fmt.Printf("%-12s %-12s %-12.0f %-12.4g %8.3f%%\n",
				fmt.Sprintf("%.0f%%", pl*100), fmt.Sprintf("%.0f%%", po*100),
				kept, sigma, 100*sigma/v.Estimate)
			if sigma < best.sigma {
				best = choice{pl: pl, po: po, sigma: sigma}
			}
		}
	}
	fmt.Printf("\nchosen shedding: keep %.0f%% of lineitem and %.0f%% of orders events\n",
		best.pl*100, best.po*100)

	// Validate by actually shedding at the chosen rates.
	check, err := db.Query(fmt.Sprintf(`
		SELECT SUM(l_extendedprice)
		FROM lineitem TABLESAMPLE (%g PERCENT), orders TABLESAMPLE (%g PERCENT)
		WHERE l_orderkey = o_orderkey`, best.pl*100, best.po*100),
		gus.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	cv := check.Values[0]
	fmt.Printf("shed run: estimate %.5g (true window value %.5g), reported σ̂ %.4g vs predicted %.4g\n",
		cv.Estimate, v.Estimate, cv.StdErr, best.sigma)
}
