// Prepared statements: compile a parameterized estimation query ONCE, then
// execute it many times with different `?` bindings — different predicate
// thresholds, different sampling rates, different seeds — paying the
// parse/plan/kernel-compile cost only on Prepare. The demo also shows the
// implicit plan cache that gives plain db.Query the same amortization, and
// measures what both save over one-shot execution.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.005, 42); err != nil { // ~7.5k orders
		log.Fatal(err)
	}
	ctx := context.Background()

	// Compile once. Placeholders may sit in predicates, aggregate
	// arguments AND the TABLESAMPLE clause — binding a sampling rate
	// re-derives the estimator's GUS parameters per execution, so the
	// confidence intervals always price the rate actually bound.
	st, err := db.Prepare(`
		SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue, COUNT(*) AS n
		FROM lineitem TABLESAMPLE (? PERCENT)
		WHERE l_quantity < ?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared once: %d parameters\n\n", st.NumParams())

	// Execute many: sweep the predicate threshold at a fixed 10% sample.
	for _, qty := range []float64{10, 25, 40} {
		res, err := st.Query(ctx, 10, qty, gus.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		v := res.Values[0]
		fmt.Printf("qty < %4.0f  revenue ≈ %12.0f  (95%% CI [%.0f, %.0f], n≈%.0f)\n",
			qty, v.Estimate, v.CILow, v.CIHigh, res.Values[1].Estimate)
	}
	fmt.Println()

	// Sweep the SAMPLING RATE instead: more data, tighter intervals —
	// one prepared plan serves every rate.
	for _, pct := range []int{5, 20, 80} {
		res, err := st.Query(ctx, pct, 25.0, gus.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		v := res.Values[0]
		fmt.Printf("%2d%% sample  revenue ≈ %12.0f  ± %6.0f\n", pct, v.Estimate, v.StdErr)
	}
	fmt.Println()

	// What does compile-once buy? Time the same query one-shot (plan
	// cache disabled), through the implicit cache, and prepared.
	const lit = `
		SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue, COUNT(*) AS n
		FROM lineitem TABLESAMPLE (10 PERCENT)
		WHERE l_quantity < 25.0`
	const iters = 200
	run := func(label string, fn func(i int) error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(i); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-28s %8.0f µs/query\n", label,
			float64(time.Since(start).Microseconds())/iters)
	}
	db.SetPlanCacheCap(0) // disable the implicit cache: true one-shot
	run("one-shot (no cache)", func(i int) error {
		_, err := db.Query(lit, gus.WithSeed(uint64(i)))
		return err
	})
	db.SetPlanCacheCap(gus.DefaultPlanCacheSize)
	run("db.Query (plan cache)", func(i int) error {
		_, err := db.Query(lit, gus.WithSeed(uint64(i)))
		return err
	})
	run("prepared Stmt.Query", func(i int) error {
		_, err := st.Query(ctx, 10, 25.0, gus.WithSeed(uint64(i)))
		return err
	})
	stats := db.PlanCacheStats()
	fmt.Printf("\nplan cache: %d hits, %d misses, %d entries\n",
		stats.Hits, stats.Misses, stats.Entries)
}
