// Quickstart: estimate a SUM over a Bernoulli sample of one table and get
// a statistically sound confidence interval for the true (full-data) sum.
package main

import (
	"fmt"
	"log"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()

	// A small sales table, populated programmatically.
	sales, err := db.CreateTable("sales",
		gus.Column{Name: "region", Type: gus.Int},
		gus.Column{Name: "amount", Type: gus.Float},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := sales.Insert(i%7, float64(10+i%90)); err != nil {
			log.Fatal(err)
		}
	}

	// The TABLESAMPLE clause makes this an estimation query: the engine
	// samples 5% of the rows, then reports an unbiased estimate of the sum
	// over ALL rows, with a 95% confidence interval.
	res, err := db.Query(`
		SELECT SUM(amount) AS total, COUNT(*) AS n
		FROM sales TABLESAMPLE (5 PERCENT)
		WHERE region < 5`,
		gus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.Values {
		fmt.Printf("%-6s estimate %12.1f   95%% CI [%12.1f, %12.1f]\n",
			v.Name, v.Estimate, v.CILow, v.CIHigh)
	}

	// Compare with the exact answer (cheap here; the whole point of
	// sampling is that in production this would be too expensive).
	exact, err := db.Exact(`SELECT SUM(amount), COUNT(*) FROM sales WHERE region < 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact  total %12.1f   count %8.0f\n",
		exact.Values[0].Value, exact.Values[1].Value)
	fmt.Printf("sample contained %d of 10000 rows\n", res.SampleRows)
}
