// Observability end to end: EXPLAIN ANALYZE, programmatic traces, the
// progressive per-wave series (CI width vs fraction scanned), and the
// DB-wide metrics registry rendered as Prometheus text. Everything here
// is pay-for-what-you-use — queries that don't attach a trace run the
// exact same engine with a nil-check per instrumentation site.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.005, 42); err != nil { // ~7.5k orders
		log.Fatal(err)
	}

	// 1. EXPLAIN ANALYZE: the statement executes normally AND returns the
	// annotated plan — per-operator wall time, rows in/out, partition
	// counts and effective sampling fractions, plus a stage table.
	res, err := db.Query(`EXPLAIN ANALYZE
		SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue
		FROM lineitem TABLESAMPLE BERNOULLI(20), orders
		WHERE l_orderkey = o_orderkey`, gus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue ≈ %.0f ± %.0f  (the query still ran)\n\n", res.Values[0].Estimate, res.Values[0].StdErr)
	fmt.Println(indent(res.ExplainText))

	// 2. The same trace, programmatically: attach a gus.Trace to any
	// query and read spans (or serialize the whole thing as JSON).
	tr := &gus.Trace{QueryID: "demo-1"}
	if _, err := db.Query(`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (25 PERCENT) GROUP BY l_linenumber`,
		gus.WithSeed(7), gus.WithTrace(tr)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage totals for a GROUP BY (from Trace spans):")
	for _, sp := range tr.Spans {
		fmt.Printf("  %-12s %8s  rows_in=%-6d rows_out=%d\n", sp.Name, sp.Dur.Round(1000), sp.RowsIn, sp.RowsOut)
	}
	fmt.Println()

	// 3. Progressive queries record a per-wave series: watch the CI
	// tighten as the scanned fraction grows — the online-aggregation
	// accuracy/cost curve, one point per wave.
	ptr := &gus.Trace{}
	ch, wait := db.QueryProgressive(context.Background(),
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (90 PERCENT)`,
		gus.WithSeed(7), gus.WithWaveRows(2048), gus.WithTrace(ptr))
	for range ch {
	}
	if err := wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("progressive wave series (CI width vs fraction scanned):")
	for _, w := range ptr.Waves {
		bar := strings.Repeat("#", int(40*w.FractionScanned))
		fmt.Printf("  %6.1f%%  ci_width=%10.4g  %s\n", 100*w.FractionScanned, w.CIWidth, bar)
	}
	fmt.Println()

	// 4. The DB has been counting all along: MetricsSnapshot returns the
	// registry as data, WriteMetrics renders Prometheus text — the same
	// bytes gusserve serves at GET /metrics.
	fmt.Println("a few registry samples (db.MetricsSnapshot):")
	for _, m := range db.MetricsSnapshot() {
		if m.Name == "gus_queries_total" || m.Name == "gus_rows_scanned_total" ||
			m.Name == "gus_plan_cache_hits_total" || m.Name == "gus_progressive_stop_total" {
			fmt.Printf("  %s%s = %g\n", m.Name, labels(m), m.Value)
		}
	}
	fmt.Println("\nPrometheus exposition (first lines of db.WriteMetrics):")
	var sb strings.Builder
	if err := db.WriteMetrics(&sb); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	for _, l := range lines[:min(12, len(lines))] {
		fmt.Println("  " + l)
	}
}

func labels(m gus.MetricSample) string {
	if m.Label == "" {
		return ""
	}
	return fmt.Sprintf("{%q}", m.Label)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
