// Sampling-design exploration (§8 "choosing sampling parameters"):
// run ONE pilot query, recover the unbiased data-moment estimates ŷ_S,
// and predict — without drawing any new samples — the estimator variance
// that alternative sampling designs would achieve. Then pick the cheapest
// design meeting a precision target and validate it by running it.
package main

import (
	"fmt"
	"log"
	"math"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.004, 11); err != nil {
		log.Fatal(err)
	}

	// Pilot: a modest 20% × WOR(1500) design.
	pilot, err := db.Query(`
		SELECT SUM(l_extendedprice)
		FROM lineitem TABLESAMPLE (20 PERCENT), orders TABLESAMPLE (1500 ROWS)
		WHERE l_orderkey = o_orderkey`,
		gus.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	v := pilot.Values[0]
	fmt.Printf("pilot: estimate %.4g, σ̂ %.4g (%.2f%% relative)\n\n",
		v.Estimate, v.StdErr, 100*v.StdErr/v.Estimate)

	// Explore the design space from the pilot's moments alone.
	target := 0.01 * v.Estimate // want σ ≤ 1% of the estimate
	fmt.Printf("target: σ ≤ %.4g (1%% of the estimate)\n\n", target)
	fmt.Printf("%-10s %-10s %-12s %-12s %s\n", "lineitem", "orders", "predicted σ", "rel. σ", "meets target")

	type candidate struct {
		p    float64
		rows int
		cost float64 // proxy: expected sampled tuples
	}
	var best *candidate
	bestSigma := math.Inf(1)
	for _, p := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		for _, rows := range []int{500, 1500, 4000} {
			pv, err := v.PredictVariance(gus.Design{
				"lineitem": {Kind: "bernoulli", P: p},
				"orders":   {Kind: "wor", Rows: rows},
			})
			if err != nil {
				log.Fatal(err)
			}
			sigma := math.Sqrt(pv)
			meets := sigma <= target
			fmt.Printf("B(%4.0f%%)   WOR(%-5d) %-12.4g %-12.4f %v\n",
				p*100, rows, sigma, sigma/v.Estimate, meets)
			liLen, _ := db.TableLen("lineitem")
			cost := p*float64(liLen) + float64(rows)
			if meets && (best == nil || cost < best.cost) {
				best = &candidate{p: p, rows: rows, cost: cost}
				bestSigma = sigma
			}
		}
	}
	if best == nil {
		fmt.Println("\nno explored design meets the target; increase rates")
		return
	}
	fmt.Printf("\ncheapest design meeting target: B(%.0f%%) × WOR(%d), predicted σ %.4g\n",
		best.p*100, best.rows, bestSigma)

	// Validate: run the chosen design for real.
	check, err := db.Query(fmt.Sprintf(`
		SELECT SUM(l_extendedprice)
		FROM lineitem TABLESAMPLE (%g PERCENT), orders TABLESAMPLE (%d ROWS)
		WHERE l_orderkey = o_orderkey`, best.p*100, best.rows),
		gus.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation run reports σ̂ = %.4g (prediction was %.4g)\n",
		check.Values[0].StdErr, bestSigma)
}
