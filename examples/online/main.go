// Online aggregation on TPC-H Query 1: the query streams one refining
// estimate per partition wave, its confidence interval visibly shrinking,
// and stops the moment the 95% CI half-width falls within 1% of the
// estimate — here after roughly half the data. The final line compares
// the early answer against the exact one computed from a full unsampled
// scan.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	// Scale factor 0.02 ≈ 30000 orders / ~120k lineitems.
	if err := db.AttachTPCH(0.02, 42); err != nil {
		log.Fatal(err)
	}

	// Query 1's revenue aggregate. The 90 PERCENT sample keeps the
	// full-sample CI well under the 1% target, so the accuracy budget is
	// reachable from a strict subset of the data.
	const q1 = `
		SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue
		FROM lineitem TABLESAMPLE (90 PERCENT)
		WHERE l_quantity < 45.0`

	fmt.Println("online aggregation, stopping at a 1% relative CI:")
	ch, wait := db.QueryProgressive(context.Background(), q1,
		gus.WithSeed(7),
		gus.WithTargetRelativeCI(0.01),
	)
	var last gus.Update
	for u := range ch {
		last = u
		v := u.Values[0]
		bar := strings.Repeat("#", int(40*u.FractionScanned))
		fmt.Printf("wave %2d %-40s %5.1f%%  revenue ≈ %.4g ± %.2f%%\n",
			u.Wave, bar, 100*u.FractionScanned, v.Estimate, 100*v.RelHalfWidth)
	}
	if err := wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped: %s after scanning %.1f%% of lineitem\n",
		last.Reason, 100*last.FractionScanned)

	exact, err := db.Exact(q1)
	if err != nil {
		log.Fatal(err)
	}
	truth := exact.Values[0].Value
	v := last.Values[0]
	fmt.Printf("early answer %.6g, exact %.6g (off by %.3f%%); truth inside CI: %v\n",
		v.Estimate, truth, 100*relErr(v.Estimate, truth),
		v.CILow <= truth && truth <= v.CIHigh)
}

func relErr(est, truth float64) float64 {
	d := est - truth
	if d < 0 {
		d = -d
	}
	if truth < 0 {
		truth = -truth
	}
	if truth == 0 {
		return 0
	}
	return d / truth
}
