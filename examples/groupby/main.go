// Grouped estimation: every GROUP BY bucket's aggregate is itself a
// SUM-like aggregate (f·1{group=k}), so the paper's analysis applies per
// group with the SAME top GUS operator — each group gets its own unbiased
// estimate and confidence interval from one sampled execution.
package main

import (
	"fmt"
	"log"

	gus "github.com/sampling-algebra/gus"
)

func main() {
	db := gus.Open()
	if err := db.AttachTPCH(0.004, 77); err != nil {
		log.Fatal(err)
	}

	sql := `
		SELECT SUM(l_extendedprice*(1.0-l_discount)) AS revenue,
		       COUNT(*) AS items
		FROM lineitem TABLESAMPLE (15 PERCENT), orders
		WHERE l_orderkey = o_orderkey AND l_quantity > 45
		GROUP BY o_custkey`

	res, err := db.Query(sql, gus.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := db.Exact(sql)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[string]float64{}
	for _, g := range exact.Groups {
		truth[g.Key] = g.Values[0].Estimate
	}

	fmt.Printf("%d customer groups estimated from one 15%% sample (%d rows)\n\n",
		len(res.Groups), res.SampleRows)
	fmt.Printf("%-10s %-14s %-26s %-12s %s\n", "custkey", "revenue est.", "95% CI", "true", "covered")
	shown, covered := 0, 0
	for _, g := range res.Groups {
		v := g.Values[0]
		tr, ok := truth[g.Key]
		in := ok && v.CILow <= tr && tr <= v.CIHigh
		if in {
			covered++
		}
		if shown < 12 {
			fmt.Printf("%-10s %-14.0f [%10.0f, %10.0f]   %-12.0f %v\n",
				g.Key, v.Estimate, v.CILow, v.CIHigh, tr, in)
			shown++
		}
	}
	fmt.Printf("... (%d groups total; CI covered the truth in %d of them)\n",
		len(res.Groups), covered)
}
