package gus

import "errors"

// ErrUnsupported marks a request the engine understands but cannot serve —
// e.g. GROUP BY under progressive execution. Callers branch on it with
// errors.Is to distinguish "valid query, unsupported mode" (a client error
// worth a 4xx) from malformed input or internal failures; the wrapped
// message names the specific limitation.
var ErrUnsupported = errors.New("unsupported")
