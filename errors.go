package gus

import (
	"errors"

	"github.com/sampling-algebra/gus/internal/segment"
)

// ErrUnsupported marks a request the engine understands but cannot serve —
// e.g. GROUP BY under progressive execution. Callers branch on it with
// errors.Is to distinguish "valid query, unsupported mode" (a client error
// worth a 4xx) from malformed input or internal failures; the wrapped
// message names the specific limitation.
var ErrUnsupported = errors.New("unsupported")

// ErrCorruptSegment matches (via errors.Is) every error OpenDir,
// AttachSegment and ATTACH SEGMENT return for a file that is not a
// well-formed segment of the supported version — truncated, torn,
// bit-flipped, or written by an incompatible format revision. Corrupt
// files are always rejected whole at open time; a damaged segment never
// surfaces as a silently short or garbled table.
var ErrCorruptSegment = segment.ErrCorrupt

// SegmentError is the concrete corruption error behind ErrCorruptSegment;
// errors.As exposes the offending file path, byte offset and reason.
type SegmentError = segment.CorruptError
