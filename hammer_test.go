package gus

import (
	"fmt"
	"sync"
	"testing"
)

// TestInsertWhileQueryHammer drives the two mutation paths the engine
// maintains incrementally — synopsis append-maintenance and the
// segment-backed table's in-memory tail — from writer goroutines while
// reader goroutines run sampled queries (some served from the synopsis),
// exact scans, and catalog listings. The race detector is the main
// assertion; the bounds checks catch torn reads that happen to be
// race-free (e.g. a count outside [base, final]).
func TestInsertWhileQueryHammer(t *testing.T) {
	const (
		base      = 2048
		writers   = 4
		perWriter = 150
		readers   = 4
	)
	// Seed a resident DB, persist it, and reopen segment-backed so every
	// hammered insert exercises the segment tail-append path.
	src := Open()
	stb, err := src.CreateTable("ev", Column{Name: "k", Type: Int}, Column{Name: "v", Type: Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base; i++ {
		if err := stb.Insert(i, float64(i%97)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateSynopsis(SynopsisSpec{Name: "ev_syn", Table: "ev", Rate: 0.25, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	tb, err := db.Table("ev")
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, writers+readers)
	writersDone := make(chan struct{})
	var wwg, rwg sync.WaitGroup

	wwg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tb.Insert(base+w*perWriter+i, float64(i%31)+0.25); err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	rwg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer rwg.Done()
			const total = base + writers*perWriter
			for iter := 0; ; iter++ {
				select {
				case <-writersDone:
					return
				default:
				}
				switch iter % 3 {
				case 0:
					// A coordinated REPEATABLE shape the synopsis can serve.
					res, err := db.Query(`SELECT SUM(v) FROM ev TABLESAMPLE BERNOULLI(10) REPEATABLE(7)`, WithSeed(uint64(r+1)))
					if err != nil {
						errc <- fmt.Errorf("reader %d sampled query: %w", r, err)
						return
					}
					if res.Values[0].Estimate < 0 {
						errc <- fmt.Errorf("reader %d: negative SUM estimate %v", r, res.Values[0].Estimate)
						return
					}
				case 1:
					res, err := db.Exact(`SELECT COUNT(*) AS n FROM ev`)
					if err != nil {
						errc <- fmt.Errorf("reader %d exact count: %w", r, err)
						return
					}
					if n := res.Values[0].Value; n < base || n > total {
						errc <- fmt.Errorf("reader %d: count %v outside [%d, %d]", r, n, base, total)
						return
					}
				default:
					// Catalog scans race the writers' maintenance updates.
					for _, info := range db.Tables() {
						if info.Name == "ev" && (info.Rows < base || info.Rows > total) {
							errc <- fmt.Errorf("reader %d: Tables rows %d outside [%d, %d]", r, info.Rows, base, total)
							return
						}
					}
					for _, sy := range db.Synopses() {
						if sy.Rows > sy.SourceRows {
							errc <- fmt.Errorf("reader %d: synopsis %s has %d rows from %d source rows", r, sy.Name, sy.Rows, sy.SourceRows)
							return
						}
					}
				}
			}
		}(r)
	}

	wwg.Wait()
	close(writersDone)
	rwg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced state: every insert landed, and the incrementally
	// maintained synopsis agrees with a from-scratch rebuild.
	const total = base + writers*perWriter
	res, err := db.Exact(`SELECT COUNT(*) AS n FROM ev`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Values[0].Value; n != total {
		t.Fatalf("final count %v, want %d", n, total)
	}
	var maintained SynopsisInfo
	for _, sy := range db.Synopses() {
		if sy.Name == "ev_syn" {
			maintained = sy
		}
	}
	if maintained.Name == "" || maintained.Stale {
		t.Fatalf("synopsis not maintained through concurrent appends: %+v", maintained)
	}
	if maintained.SourceRows != total {
		t.Fatalf("synopsis built over %d rows, want %d", maintained.SourceRows, total)
	}
	if err := db.RefreshSynopsis("ev_syn"); err != nil {
		t.Fatal(err)
	}
	var rebuilt SynopsisInfo
	for _, sy := range db.Synopses() {
		if sy.Name == "ev_syn" {
			rebuilt = sy
		}
	}
	if rebuilt.Rows != maintained.Rows {
		t.Fatalf("incremental maintenance drifted: maintained %d rows, rebuild %d", maintained.Rows, rebuilt.Rows)
	}

	// The tail survives a round-trip: re-save, reopen, recount.
	dir2 := t.TempDir()
	if err := db.Save(dir2); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res2, err := db2.Exact(`SELECT COUNT(*) AS n FROM ev`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res2.Values[0].Value; n != total {
		t.Fatalf("reopened count %v, want %d", n, total)
	}
}
