// Materialized sample synopses: the public API over internal/synopsis.
//
// A synopsis is a per-table Bernoulli (or stratified-by-column) sample
// materialized once — through the same fused scan→sample pipeline queries
// run on — and registered with the planner. When a query asks for
// TABLESAMPLE BERNOULLI(p) of a table carrying a rate-q synopsis with
// p ≤ q, the planner serves the query FROM the synopsis: it rewrites the
// scan to read the (much smaller) synopsis relation and composes a
// residual Bernoulli(p/q) sampling operator on top. By Prop. 8 of the
// sampling algebra the composition compacts to exactly Bernoulli(p) over
// the base table, so estimates, variances and confidence intervals are
// computed from the SAME GUS parameters the full-scan plan would have —
// unbiasedness and CI coverage are preserved by construction, only the
// I/O shrinks. Queries the synopsis cannot soundly serve (WOR or SYSTEM
// sampling, rates above q, mismatched REPEATABLE seeds, synopses gone
// stale behind out-of-band appends) silently fall back to the full scan;
// gus_synopsis_misses_total says why.
//
// Synopses are maintained incrementally: rows appended through
// Table.Insert/InsertWithID are hash-tested and folded in at append time
// (coordinated sampling makes membership a pure function of the row's
// lineage id), so a maintained synopsis never goes stale. SaveSynopses /
// LoadSynopses persist them as .gussyn segment files beside a JSON
// manifest; loading verifies every row against its own membership hash
// and catches up over rows appended since the save.
package gus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/sampling-algebra/gus/internal/core"
	"github.com/sampling-algebra/gus/internal/plan"
	"github.com/sampling-algebra/gus/internal/relation"
	"github.com/sampling-algebra/gus/internal/sampling"
	"github.com/sampling-algebra/gus/internal/segment"
	"github.com/sampling-algebra/gus/internal/synopsis"
)

// SynopsisExt is the file extension SaveSynopses writes for synopsis
// segments, and SynopsisManifest the manifest file listing them.
const (
	SynopsisExt      = ".gussyn"
	SynopsisManifest = "synopses.json"
)

// SynopsisSpec describes a synopsis to materialize.
type SynopsisSpec struct {
	// Name registers the synopsis (unique among synopses).
	Name string
	// Table is the source table.
	Table string
	// Rate is the Bernoulli rate q ∈ (0,1]; for stratified synopses, the
	// default rate for strata not listed in Rates.
	Rate float64
	// Seed is the sampling method seed (0 = a fixed default). A query
	// using TABLESAMPLE BERNOULLI(p) REPEATABLE(r) under WithSeed(s) is
	// served deterministically from the synopsis only when its derived
	// seed uint64(r)^s equals this seed.
	Seed uint64
	// StratifyBy optionally names a column whose rendered value selects
	// the stratum; Rates maps stratum values to their rates. Queries are
	// served at rates up to the MINIMUM stratum rate.
	StratifyBy string
	Rates      map[string]float64
}

// SynopsisInfo describes one registered synopsis — what db.Synopses and
// gusserve's GET /tables report.
type SynopsisInfo struct {
	// Name and Table identify the synopsis and its source.
	Name  string
	Table string
	// GUS renders the synopsis's sampling claim, e.g. "Bernoulli(lineitem, 0.02)".
	GUS string
	// Rate is the (default) Bernoulli rate; MinRate the smallest stratum
	// rate — the largest query rate the synopsis can serve.
	Rate    float64
	MinRate float64
	// Seed is the sampling method seed.
	Seed uint64
	// StratifyBy and Rates are set for stratified synopses.
	StratifyBy string             `json:",omitempty"`
	Rates      map[string]float64 `json:",omitempty"`
	// Rows is the materialized sample's cardinality; SourceRows how many
	// source rows it covers. Stale reports whether the source has moved
	// past SourceRows (a stale synopsis never serves queries).
	Rows       int
	SourceRows int
	Stale      bool
	// Bytes estimates the synopsis's resident footprint.
	Bytes int64
	// Generation is the catalog generation at build/refresh time.
	Generation uint64
}

// WithSynopses enables or disables synopsis-serving for this query
// (default on). WithSynopses(false) forces the full-scan plan — the A/B
// switch for verifying that synopsis-served estimates agree with base
// ones (gusquery exposes it as -no-synopsis).
func WithSynopses(on bool) Option { return func(o *queryOptions) { o.noSynopsis = !on } }

// CreateSynopsis materializes and registers a synopsis. The build runs
// the fused scan→sample pipeline over the current table contents and
// serializes against in-flight queries like any catalog write; subsequent
// Table.Insert/InsertWithID appends maintain the synopsis incrementally.
func (db *DB) CreateSynopsis(spec SynopsisSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if spec.Name == "" {
		return fmt.Errorf("gus: synopsis needs a name")
	}
	if _, clash := db.tables[spec.Name]; clash {
		return fmt.Errorf("gus: synopsis name %q collides with a table", spec.Name)
	}
	src, ok := db.tables[spec.Table]
	if !ok {
		return fmt.Errorf("gus: unknown table %q", spec.Table)
	}
	s, err := synopsis.Build(src, synopsis.Spec{
		Name:     spec.Name,
		Rate:     spec.Rate,
		Seed:     spec.Seed,
		StratCol: spec.StratifyBy,
		Rates:    spec.Rates,
		Workers:  db.workers,
	}, db.gen.Load())
	if err != nil {
		return fmt.Errorf("gus: %w", err)
	}
	if err := db.syns.Add(s); err != nil {
		return fmt.Errorf("gus: %w", err)
	}
	return nil
}

// DropSynopsis unregisters a synopsis. Queries fall back to full scans.
func (db *DB) DropSynopsis(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.syns.Remove(name) {
		return fmt.Errorf("gus: unknown synopsis %q", name)
	}
	return nil
}

// RefreshSynopsis brings a stale synopsis back in sync with its source:
// rows appended since the last build are hash-tested and folded in (the
// coordinated decision, identical to what append-time maintenance would
// have done). A synopsis that cannot be repaired incrementally is rebuilt
// from scratch.
func (db *DB) RefreshSynopsis(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.syns.Get(name)
	if !ok {
		return fmt.Errorf("gus: unknown synopsis %q", name)
	}
	src, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("gus: synopsis %q references unknown table %q", name, s.Table)
	}
	if s.BuiltRows <= src.Len() {
		if err := s.CatchUp(src, db.gen.Load()); err != nil {
			return fmt.Errorf("gus: %w", err)
		}
		return nil
	}
	// The source shrank (e.g. replaced): rebuild under the same spec.
	fresh, err := synopsis.Build(src, synopsis.Spec{
		Name: s.Name, Rate: s.Rate, Seed: s.Seed, StratCol: s.StratCol, Rates: s.Rates, Workers: db.workers,
	}, db.gen.Load())
	if err != nil {
		return fmt.Errorf("gus: %w", err)
	}
	db.syns.Remove(name)
	return db.syns.Add(fresh)
}

// Synopses describes every registered synopsis, sorted by name.
func (db *DB) Synopses() []SynopsisInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	all := db.syns.All()
	out := make([]SynopsisInfo, 0, len(all))
	for _, s := range all {
		out = append(out, db.synopsisInfoLocked(s))
	}
	return out
}

// synopsisInfoLocked renders one synopsis's description; db.mu held.
func (db *DB) synopsisInfoLocked(s *synopsis.Synopsis) SynopsisInfo {
	info := SynopsisInfo{
		Name:       s.Name,
		Table:      s.Table,
		Rate:       s.Rate,
		MinRate:    s.MinRate,
		Seed:       s.Seed,
		StratifyBy: s.StratCol,
		Rates:      s.Rates,
		Rows:       s.Rel.Len(),
		SourceRows: s.BuiltRows,
		Bytes:      s.Bytes(),
		Generation: s.Generation,
	}
	if s.StratCol == "" {
		info.GUS = fmt.Sprintf("Bernoulli(%s, %g)", s.Table, s.Rate)
	} else {
		info.GUS = fmt.Sprintf("Bernoulli(%s, by %s, min %g)", s.Table, s.StratCol, s.MinRate)
	}
	src, ok := db.tables[s.Table]
	info.Stale = !ok || s.BuiltRows != src.Len()
	return info
}

// synopsisInfosForLocked lists a table's synopses; db.mu held.
func (db *DB) synopsisInfosForLocked(table string) []SynopsisInfo {
	syns := db.syns.ForTable(table)
	if len(syns) == 0 {
		return nil
	}
	out := make([]SynopsisInfo, 0, len(syns))
	for _, s := range syns {
		out = append(out, db.synopsisInfoLocked(s))
	}
	return out
}

// maintainSynopses folds the just-appended last row of rel into every
// synopsis over it. Called with db.mu write-held, after a successful
// append.
func (db *DB) maintainSynopses(rel *relation.Relation) error {
	if db.syns.Len() == 0 {
		return nil
	}
	n := rel.Len()
	return db.syns.OnAppend(rel.Name(), rel.ID(n-1), rel.Row(n-1), n)
}

// ---------------------------------------------------------------------------
// Planner integration: the subsumption rewrite.

// applySynopses rewrites every sampled base-table scan the registry can
// serve: Sample(m, Scan(T)) becomes Sample(residual, GUS(Bernoulli(q),
// Scan(synopsis))) when a synopsis over T subsumes m. The GUS node asserts
// what the synopsis IS (a Bernoulli(q) sample of T); the residual performs
// the remaining Bernoulli(p/q); compaction proves the stack equals the
// original Bernoulli(p). Called per execution with db.mu read-held, on
// the freshly bound plan — cached templates stay synopsis-agnostic.
func (db *DB) applySynopses(n plan.Node, o *queryOptions) plan.Node {
	switch t := n.(type) {
	case *plan.Sample:
		if scan, ok := t.Input.(*plan.Scan); ok && scan.Synopsis == "" {
			if repl := db.trySynopsis(t, scan, o); repl != nil {
				return repl
			}
			return t
		}
		return &plan.Sample{Input: db.applySynopses(t.Input, o), Method: t.Method}
	case *plan.Scan:
		return t
	case *plan.GUS:
		return &plan.GUS{Input: db.applySynopses(t.Input, o), G: t.G}
	case *plan.Select:
		return &plan.Select{Input: db.applySynopses(t.Input, o), Pred: t.Pred}
	case *plan.Join:
		return &plan.Join{Left: db.applySynopses(t.Left, o), Right: db.applySynopses(t.Right, o), LeftCol: t.LeftCol, RightCol: t.RightCol}
	case *plan.Theta:
		return &plan.Theta{Left: db.applySynopses(t.Left, o), Right: db.applySynopses(t.Right, o), Pred: t.Pred}
	case *plan.Project:
		return &plan.Project{Input: db.applySynopses(t.Input, o), Names: t.Names, Exprs: t.Exprs}
	case *plan.Union:
		return &plan.Union{Left: db.applySynopses(t.Left, o), Right: db.applySynopses(t.Right, o)}
	case *plan.Intersect:
		return &plan.Intersect{Left: db.applySynopses(t.Left, o), Right: db.applySynopses(t.Right, o)}
	default:
		return n
	}
}

// missRank orders miss reasons by specificity, so a query probing several
// synopses reports the most actionable one ("rate" beats "method").
var missRank = map[string]int{"rate": 4, "seed": 3, "stale": 2, "method": 1}

// trySynopsis attempts to serve one sampled scan from a synopsis,
// returning the rewritten subtree or nil for fall-back. Every outcome
// lands in gus_synopsis_hits_total / gus_synopsis_misses_total{reason}
// and, when a trace rides along, in a "synopsis" span.
func (db *DB) trySynopsis(s *plan.Sample, scan *plan.Scan, o *queryOptions) plan.Node {
	srcName := scan.Rel.Name()
	alias := srcName
	if scan.Alias != "" {
		alias = scan.Alias
	}
	miss := func(reason string) plan.Node {
		db.metrics.synMisses.With(reason).Inc()
		if o.trace != nil {
			sp := o.trace.Begin("synopsis", fmt.Sprintf("miss %s: %s", alias, reason), -1)
			o.trace.End(sp, -1, -1)
		}
		return nil
	}
	if o.noSynopsis {
		return miss("disabled")
	}
	cands := db.syns.ForTable(srcName)
	if len(cands) == 0 {
		return miss("none")
	}
	srcLen := scan.Rel.Len()
	var best *synopsis.Synopsis
	var bestD synopsis.Decision
	reason := "method"
	for _, syn := range cands {
		d := syn.Subsumes(s.Method, alias, srcLen)
		if !d.OK {
			if missRank[d.Reason] > missRank[reason] {
				reason = d.Reason
			}
			continue
		}
		if best == nil || syn.Rel.Len() < best.Rel.Len() {
			best, bestD = syn, d
		}
	}
	if best == nil {
		return miss(reason)
	}
	g, err := core.Bernoulli(alias, best.MinRate)
	if err != nil {
		return miss("method")
	}
	db.metrics.synHits.Inc()
	if o.trace != nil {
		mode := "fresh"
		if bestD.Nested {
			mode = "nested"
		}
		sp := o.trace.Begin("synopsis", fmt.Sprintf("hit %s serves %s: Bernoulli(%g) ⊑ Bernoulli(%g), %s residual", best.Name, alias, bestD.P, best.MinRate, mode), -1)
		o.trace.End(sp, int64(srcLen), int64(best.Rel.Len()))
	}
	return &plan.Sample{
		Input: &plan.GUS{
			Input: &plan.Scan{Rel: best.Rel, Alias: alias, Synopsis: best.Name, FullRows: srcLen},
			G:     g,
		},
		Method: &sampling.Residual{Rel: alias, P: bestD.P, Q: best.MinRate, Hash: best.HashSeed, Nested: bestD.Nested},
	}
}

// ---------------------------------------------------------------------------
// Persistence.

// SaveSynopses writes every registered synopsis to dir: one
// <name>.gussyn segment file per synopsis plus a synopses.json manifest
// recording each one's sampling claim (table, rate(s), seed, covered
// rows). Like Save, files land atomically under their final names.
func (db *DB) SaveSynopses(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gus: save synopses: %w", err)
	}
	db.mu.RLock()
	all := db.syns.All()
	manifests := make([]synopsis.Manifest, 0, len(all))
	rels := make([]*relation.Relation, 0, len(all))
	for _, s := range all {
		manifests = append(manifests, s.Manifest())
		rels = append(rels, s.Rel)
	}
	db.mu.RUnlock()
	for i, rel := range rels {
		path := filepath.Join(dir, manifests[i].Name+SynopsisExt)
		if _, err := segment.Write(path, rel); err != nil {
			return fmt.Errorf("gus: save synopsis %q: %w", manifests[i].Name, err)
		}
	}
	data, err := json.MarshalIndent(manifests, "", "  ")
	if err != nil {
		return fmt.Errorf("gus: save synopses: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, SynopsisManifest), append(data, '\n'), 0o644)
}

// LoadSynopses attaches every synopsis listed in dir's manifest. Each
// segment is mmapped (not copied), verified row by row against its own
// membership hash — a manifest paired with the wrong segment cannot load —
// and caught up over any rows appended to its source since the save.
// Sources must already be attached; a synopsis whose source is missing
// fails the load.
func (db *DB) LoadSynopses(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, SynopsisManifest))
	if err != nil {
		return fmt.Errorf("gus: load synopses: %w", err)
	}
	var manifests []synopsis.Manifest
	if err := json.Unmarshal(data, &manifests); err != nil {
		return fmt.Errorf("gus: load synopses: %w", err)
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Name < manifests[j].Name })
	for _, m := range manifests {
		if err := db.loadSynopsis(dir, m); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) loadSynopsis(dir string, m synopsis.Manifest) error {
	t, err := segment.Open(m.Name, filepath.Join(dir, m.Name+SynopsisExt))
	if err != nil {
		return fmt.Errorf("gus: load synopsis %q: %w", m.Name, err)
	}
	s, err := synopsis.FromManifest(m, t.Rel)
	if err != nil {
		t.Close()
		return fmt.Errorf("gus: %w", err)
	}
	if err := s.Verify(); err != nil {
		t.Close()
		return fmt.Errorf("gus: %w", err)
	}
	db.mu.Lock()
	src, ok := db.tables[s.Table]
	if !ok {
		db.mu.Unlock()
		t.Close()
		return fmt.Errorf("gus: synopsis %q references unknown table %q (attach it first)", s.Name, s.Table)
	}
	if err := s.CatchUp(src, db.gen.Load()); err != nil {
		db.mu.Unlock()
		t.Close()
		return fmt.Errorf("gus: %w", err)
	}
	if err := db.syns.Add(s); err != nil {
		db.mu.Unlock()
		t.Close()
		return fmt.Errorf("gus: %w", err)
	}
	db.mu.Unlock()
	db.segs.add(t)
	return nil
}
