package gus

// Tests for the vectorized columnar pipeline as seen through the public
// API: every query must produce bit-identical results on the columnar and
// the legacy row-at-a-time paths, GROUP BY keys must order numerically,
// and QUANTILE answers must follow the query's interval method.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/sampling-algebra/gus/internal/stats"
)

// TestColumnarMatchesRowEngine is the tentpole regression: the columnar
// engine + batch-fed estimator must reproduce the row-at-a-time pipeline
// float for float across the query suite, seeds and worker counts.
func TestColumnarMatchesRowEngine(t *testing.T) {
	db := testDB(t, 2500)
	queries := []string{
		paperQuery1,
		`SELECT SUM(l_discount*(1.0-l_tax)) AS rev, COUNT(*) AS n
		 FROM lineitem TABLESAMPLE (15 PERCENT)
		 WHERE l_extendedprice > 100.0 AND l_quantity < 45.0`,
		`SELECT AVG(l_extendedprice) AS m FROM lineitem TABLESAMPLE (20 PERCENT)`,
		`SELECT QUANTILE(SUM(l_quantity), 0.9) FROM lineitem TABLESAMPLE (30 PERCENT) REPEATABLE (9)`,
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE SYSTEM (25)`,
		`SELECT SUM(o_totalprice) FROM orders TABLESAMPLE (500 ROWS)`,
	}
	for qi, sql := range queries {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, w := range []int{1, 4} {
				label := fmt.Sprintf("query %d seed %d workers %d", qi, seed, w)
				want, err := db.Query(sql, WithSeed(seed), WithWorkers(w), withRowEngine())
				if err != nil {
					t.Fatalf("%s: row engine: %v", label, err)
				}
				got, err := db.Query(sql, WithSeed(seed), WithWorkers(w))
				if err != nil {
					t.Fatalf("%s: columnar: %v", label, err)
				}
				requireSameResult(t, label, want, got)
			}
		}
	}
}

// TestColumnarMatchesRowEngineAnalyses covers GROUP BY, Exact, Robustness
// and §7 variance sub-sampling on both paths.
func TestColumnarMatchesRowEngineAnalyses(t *testing.T) {
	db := testDB(t, 1500)
	groupSQL := `SELECT SUM(l_extendedprice) AS s, AVG(l_quantity) AS a
	             FROM lineitem TABLESAMPLE (25 PERCENT) GROUP BY l_linenumber`
	want, err := db.Query(groupSQL, WithSeed(3), WithWorkers(2), withRowEngine())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(groupSQL, WithSeed(3), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "group by", want, got)
	if len(got.Groups) == 0 {
		t.Fatal("no groups")
	}

	joinSQL := `SELECT SUM(l_extendedprice) FROM lineitem, orders WHERE l_orderkey = o_orderkey`
	wantE, err := db.Exact(joinSQL, WithWorkers(4), withRowEngine())
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := db.Exact(joinSQL, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "exact", wantE, gotE)

	wantR, err := db.Robustness(joinSQL, 0.95, WithWorkers(2), withRowEngine())
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := db.Robustness(joinSQL, 0.95, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "robustness", wantR, gotR)

	subSQL := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	wantS, err := db.Query(subSQL, WithSeed(2), WithWorkers(2), WithVarianceSubsampling(300), withRowEngine())
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := db.Query(subSQL, WithSeed(2), WithWorkers(2), WithVarianceSubsampling(300))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "subsample", wantS, gotS)
}

// TestGroupByNumericOrder is the regression for the GROUP BY ordering
// bug: integer keys used to sort lexicographically ("1", "10", "2", …).
func TestGroupByNumericOrder(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("ev", Column{"cat", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2400; i++ {
		if err := tb.Insert(i%12, float64(i%7)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT SUM(v) FROM ev TABLESAMPLE (50 PERCENT) GROUP BY cat`, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 12 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	for i, g := range res.Groups {
		if want := fmt.Sprint(i); g.Key != want {
			t.Fatalf("group %d has key %q, want %q (numeric order)", i, g.Key, want)
		}
	}

	// Float keys order numerically too.
	fb, err := db.CreateTable("fv", Column{"k", Float}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := fb.Insert([]any{2.5, 10.0, 0.5}[i%3], 1.0); err != nil {
			t.Fatal(err)
		}
	}
	fres, err := db.Exact(`SELECT COUNT(*) FROM fv GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"0.5", "2.5", "10"}
	for i, g := range fres.Groups {
		if g.Key != wantKeys[i] {
			t.Fatalf("float group %d key %q, want %q", i, g.Key, wantKeys[i])
		}
	}

	// String keys keep lexicographic order.
	sb, err := db.CreateTable("sv", Column{"k", String}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"pear", "apple", "fig", "apple"} {
		if err := sb.Insert(k, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	sres, err := db.Exact(`SELECT COUNT(*) FROM sv GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	wantS := []string{"apple", "fig", "pear"}
	for i, g := range sres.Groups {
		if g.Key != wantS[i] {
			t.Fatalf("string group %d key %q, want %q", i, g.Key, wantS[i])
		}
	}
}

// TestQuantileIntervalConsistency: under WithInterval(ChebyshevInterval),
// QUANTILE answers must use the distribution-free quantile — wider than
// the normal approximation on both tails, for SUM and AVG alike.
func TestQuantileIntervalConsistency(t *testing.T) {
	db := testDB(t, 2000)
	sql := `SELECT QUANTILE(SUM(l_extendedprice), 0.95) AS hi,
	               QUANTILE(SUM(l_extendedprice), 0.05) AS lo,
	               QUANTILE(AVG(l_extendedprice), 0.95) AS ahi
	        FROM lineitem TABLESAMPLE (20 PERCENT)`
	normal, err := db.Query(sql, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	cheb, err := db.Query(sql, WithSeed(4), WithInterval(ChebyshevInterval))
	if err != nil {
		t.Fatal(err)
	}
	// Same sample either way.
	for i := range normal.Values {
		if normal.Values[i].Estimate != cheb.Values[i].Estimate {
			t.Fatalf("interval choice changed the estimate itself")
		}
	}
	if !(cheb.Values[0].Value > normal.Values[0].Value) {
		t.Errorf("Chebyshev 0.95 SUM quantile %v not above normal %v",
			cheb.Values[0].Value, normal.Values[0].Value)
	}
	if !(cheb.Values[1].Value < normal.Values[1].Value) {
		t.Errorf("Chebyshev 0.05 SUM quantile %v not below normal %v",
			cheb.Values[1].Value, normal.Values[1].Value)
	}
	if !(cheb.Values[2].Value > normal.Values[2].Value) {
		t.Errorf("Chebyshev 0.95 AVG quantile %v not above normal %v",
			cheb.Values[2].Value, normal.Values[2].Value)
	}
	// The 0.95 quantile stays inside the 95% two-sided Chebyshev interval
	// (k=4.47 two-sided vs 4.36 one-sided).
	if cheb.Values[0].Value >= cheb.Values[0].CIHigh {
		t.Errorf("Cantelli 0.95 quantile %v outside the Chebyshev CI bound %v",
			cheb.Values[0].Value, cheb.Values[0].CIHigh)
	}
}

// TestLoadCSVDuplicateCheckedFirst: a duplicate table name must be
// rejected before the CSV file is even opened (CreateTable's error
// ordering), and a successful load must still reject a second load.
func TestLoadCSVDuplicateCheckedFirst(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("dup", Column{"v", Float}); err != nil {
		t.Fatal(err)
	}
	// The path does not exist: with the old load-then-check ordering this
	// returned a file error, not the duplicate error.
	err := db.LoadCSV("dup", filepath.Join(t.TempDir(), "definitely-missing.csv"))
	if err == nil {
		t.Fatal("duplicate LoadCSV accepted")
	}
	if want := `gus: table "dup" already exists`; err.Error() != want {
		t.Fatalf("duplicate check ran after parsing: got %q, want %q", err.Error(), want)
	}

	// Round-trip a real table, then load it twice.
	tb, err := db.CreateTable("roundtrip", Column{"k", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	for i := 0; i < 50; i++ {
		if err := tb.Insert(i, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "roundtrip.csv")
	if err := db.SaveCSV("roundtrip", path); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCSV("copy", path); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.TableLen("copy"); n != 50 {
		t.Fatalf("loaded %d rows", n)
	}
	if err := db.LoadCSV("copy", path); err == nil {
		t.Fatal("second load of the same name accepted")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
