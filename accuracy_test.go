package gus

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sampling-algebra/gus/internal/sqlparse"
)

// TestAuditorEndToEnd drives the shadow auditor deterministically against
// a real DB: a hot sampled shape is replayed many times and the recorded
// coverage must be consistent with the nominal 95% level.
func TestAuditorEndToEnd(t *testing.T) {
	db := obsTestDB(t)
	if _, err := db.Query(obsPointSQL, WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	a := db.newAuditor(AuditorOptions{Seed: 9, MaxFractionPerMinute: 1e9})
	const audits = 40
	for i := 0; i < audits; i++ {
		if got := a.AuditOnce(context.Background()); got != "ok" {
			t.Fatalf("audit %d = %q, want ok", i, got)
		}
	}
	if st := a.Stats(); st.Audits != audits || st.Observations != audits || st.RowsScanned == 0 {
		t.Fatalf("auditor stats = %+v", st)
	}

	rep := db.AccuracySnapshot()
	if rep.Observations != audits {
		t.Fatalf("Observations = %d, want %d", rep.Observations, audits)
	}
	// 95% CIs on uniform-ish data: essentially all intervals cover, and
	// the Wilson interval must not exclude the nominal level from above
	// (that would mean systematic under-coverage).
	if rep.Covered < 30 {
		t.Fatalf("only %d/%d intervals covered the truth", rep.Covered, audits)
	}
	if rep.CoverageHigh < 0.95 {
		t.Fatalf("Wilson interval [%v, %v] excludes the nominal 0.95 from above",
			rep.CoverageLow, rep.CoverageHigh)
	}
	wantShape := sqlparse.Normalize(obsPointSQL)
	if len(rep.Shapes) != 1 || rep.Shapes[0].Shape != wantShape {
		t.Fatalf("shapes = %+v, want one entry for %q", rep.Shapes, wantShape)
	}
	if s := rep.Shapes[0]; s.MeanClaimedHalfWidth <= 0 || s.Window != audits {
		t.Fatalf("shape summary = %+v", s)
	}

	// The audit metrics must reflect the runs.
	var okRuns, ratio, recorded float64
	for _, m := range db.MetricsSnapshot() {
		switch {
		case m.Name == "gus_audit_runs_total" && m.Label == "ok":
			okRuns = m.Value
		case m.Name == "gus_ci_coverage_ratio":
			ratio = m.Value
		case m.Name == "gus_audit_observations_total":
			recorded = m.Value
		}
	}
	if okRuns != audits || recorded != audits {
		t.Fatalf("audit metrics: ok=%v recorded=%v, want %d", okRuns, recorded, audits)
	}
	if ratio != rep.CoverageRate {
		t.Fatalf("gus_ci_coverage_ratio = %v, snapshot rate = %v", ratio, rep.CoverageRate)
	}
}

// TestAuditorSkipsUnreplayable: parameterized and GROUP BY shapes in the
// registry are skipped, never audited or failed.
func TestAuditorSkipsUnreplayable(t *testing.T) {
	db := obsTestDB(t)
	if _, err := db.Prepare(`SELECT SUM(v) FROM fact TABLESAMPLE BERNOULLI(30) WHERE v > ?`); err != nil {
		t.Fatal(err)
	}
	a := db.newAuditor(AuditorOptions{Seed: 1, MaxFractionPerMinute: 1e9})
	if got := a.AuditOnce(context.Background()); got != "skipped" {
		t.Fatalf("parameterized shape: AuditOnce = %q, want skipped", got)
	}

	db2 := obsTestDB(t)
	if _, err := db2.Query(obsGroupSQL, WithSeed(3)); err != nil {
		t.Fatal(err)
	}
	a2 := db2.newAuditor(AuditorOptions{Seed: 1, MaxFractionPerMinute: 1e9})
	if got := a2.AuditOnce(context.Background()); got != "skipped" {
		t.Fatalf("GROUP BY shape: AuditOnce = %q, want skipped", got)
	}
	if rep := db2.AccuracySnapshot(); rep.Observations != 0 || rep.Auditor != nil {
		t.Fatalf("skipped audits must record nothing: %+v", rep)
	}
}

// TestAuditorSoakShort exercises the real background loop end-to-end —
// EnableAuditor through observation recording to DisableAuditor — fast
// enough for -short CI runs.
func TestAuditorSoakShort(t *testing.T) {
	db := obsTestDB(t)
	if _, err := db.Query(obsPointSQL, WithSeed(4)); err != nil {
		t.Fatal(err)
	}
	opts := AuditorOptions{Interval: 2 * time.Millisecond, MaxFractionPerMinute: 1e9, Seed: 7}
	if err := db.EnableAuditor(opts); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableAuditor(opts); err == nil {
		t.Fatal("second EnableAuditor succeeded, want error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := db.AccuracySnapshot()
		if rep.Auditor != nil && rep.Auditor.Audits >= 3 && rep.Observations >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auditor made no progress: %+v", rep)
		}
		time.Sleep(2 * time.Millisecond)
	}
	db.DisableAuditor()
	frozen := db.AccuracySnapshot().Auditor.Audits
	time.Sleep(20 * time.Millisecond)
	if got := db.AccuracySnapshot().Auditor.Audits; got != frozen {
		t.Fatalf("auditor still running after DisableAuditor: %d -> %d audits", frozen, got)
	}
	db.DisableAuditor() // idempotent

	// Close stops a re-enabled auditor on its own.
	if err := db.EnableAuditor(opts); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShapeMetricsChurnBound hammers the per-shape metric registry with
// far more distinct statement shapes than its cap, concurrently (run
// under -race): the map must stay bounded with the excess folding into
// the "other" slot, and no query may fail because of the bound.
func TestShapeMetricsChurnBound(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("s", Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tb.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	const workers, perWorker = 8, 50 // 400 distinct shapes > maxShapeSlots
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sql := fmt.Sprintf("SELECT SUM(v) FROM s WHERE v > %d.5", w*perWorker+i)
				if _, err := db.Query(sql); err != nil {
					errs <- fmt.Errorf("%s: %w", sql, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	db.metrics.mu.Lock()
	tracked, overflow := len(db.metrics.shapes), db.metrics.overflow
	db.metrics.mu.Unlock()
	if tracked > maxShapeSlots {
		t.Fatalf("tracked %d shapes, cap %d", tracked, maxShapeSlots)
	}
	if overflow == nil || overflow.queries.Value() == 0 {
		t.Fatal("overflow shapes did not land in the \"other\" slot")
	}
	series, total := 0, uint64(0)
	for _, m := range db.MetricsSnapshot() {
		if m.Name == "gus_shape_queries_total" {
			series++
			total += uint64(m.Value)
		}
	}
	if series > maxShapeSlots+1 {
		t.Fatalf("%d gus_shape_queries_total series, want ≤ %d", series, maxShapeSlots+1)
	}
	if total != workers*perWorker {
		t.Fatalf("shape query counts sum to %d, want %d (no query lost to the bound)", total, workers*perWorker)
	}
}

// TestQueryReliabilitySurfaced: traced queries carry the CI-reliability
// grade on every Value, EXPLAIN ANALYZE renders it, the delta-method AVG
// is capped below A — and none of it perturbs results (including after
// shadow audits ran on the same DB).
func TestQueryReliabilitySurfaced(t *testing.T) {
	db := obsTestDB(t)
	plain, err := db.Query(obsPointSQL, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Values[0].Reliability != "" {
		t.Fatalf("untraced query has Reliability %q, want empty (diagnostics are trace-gated)", plain.Values[0].Reliability)
	}
	tr := &Trace{}
	traced, err := db.Query(obsPointSQL, WithSeed(3), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "traced-vs-plain", traced, plain)
	v := traced.Values[0]
	if v.Reliability < "A" || v.Reliability > "D" || len(v.Reliability) != 1 {
		t.Fatalf("Reliability = %q, want A–D", v.Reliability)
	}
	if v.VarianceRSE < 0 {
		t.Fatalf("VarianceRSE = %v", v.VarianceRSE)
	}
	if txt := tr.Format(); !strings.Contains(txt, "reliability="+v.Reliability) {
		t.Fatalf("trace does not mention the reliability grade:\n%s", txt)
	}

	// Delta-method AVG: first-order variance caps the grade below A.
	avg, err := db.Query(`SELECT AVG(v) FROM fact TABLESAMPLE BERNOULLI(30)`,
		WithSeed(3), WithTrace(&Trace{}))
	if err != nil {
		t.Fatal(err)
	}
	if g := avg.Values[0].Reliability; g == "" || g == "A" {
		t.Fatalf("AVG reliability = %q, want B–D (delta-method cap)", g)
	}

	// EXPLAIN ANALYZE renders the grade without any caller-attached trace.
	ex, err := db.Query("EXPLAIN ANALYZE "+obsPointSQL, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.ExplainText, "reliability=") {
		t.Fatalf("EXPLAIN ANALYZE output lacks reliability annotation:\n%s", ex.ExplainText)
	}

	// Shadow audits on the same DB must not perturb later queries.
	a := db.newAuditor(AuditorOptions{Seed: 5, MaxFractionPerMinute: 1e9})
	for i := 0; i < 3; i++ {
		a.AuditOnce(context.Background())
	}
	again, err := db.Query(obsPointSQL, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, "post-audit", again, plain)
}

// TestProgressiveReliability: every progressive wave carries a grade, and
// it is still present (and sensible) on the final update.
func TestProgressiveReliability(t *testing.T) {
	db := obsTestDB(t)
	ch, wait := db.QueryProgressive(context.Background(), obsPointSQL,
		WithSeed(6), WithWaveRows(2048))
	waves := 0
	var last Update
	for u := range ch {
		waves++
		if len(u.Values) != 1 || u.Values[0].Reliability == "" {
			t.Fatalf("wave %d lacks a reliability grade: %+v", u.Wave, u.Values)
		}
		last = u
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if waves < 2 || !last.Final {
		t.Fatalf("stream ended after %d waves, final=%v", waves, last.Final)
	}
	if g := last.Values[0].Reliability; g != "A" && g != "B" {
		t.Fatalf("full-scan reliability = %q over %d uniform-ish rows, want A or B", g, obsFactRows)
	}
}
