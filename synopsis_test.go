package gus

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/sampling-algebra/gus/internal/relation"
)

// synTestDB builds a DB with one table "t" of n rows: id i carries
// v = i (int) and w = float(i).
func synTestDB(t testing.TB, n int) (*DB, *Table) {
	t.Helper()
	db := Open()
	tb, err := db.CreateTable("t", Column{"v", Int}, Column{"w", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tb.InsertWithID(uint64(i), i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

func metricValue(db *DB, name, label string) float64 {
	for _, m := range db.MetricsSnapshot() {
		if m.Name == name && m.Label == label {
			return m.Value
		}
	}
	return 0
}

// TestSynopsisCoordinatedBitIdentity: a REPEATABLE query whose derived
// seed matches the synopsis's is served by the NESTED residual — the
// deterministic rate-p subset of the synopsis — and must return results
// bit-identical to the full-scan plan, with and without WithSynopses.
func TestSynopsisCoordinatedBitIdentity(t *testing.T) {
	db, _ := synTestDB(t, 20000)
	const sql = `SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(2) REPEATABLE(7)`
	base, err := db.Query(sql, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Query method seed = uint64(7) ^ WithSeed(1) = 6.
	if err := db.CreateSynopsis(SynopsisSpec{Name: "t_10pct", Table: "t", Rate: 0.10, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	served, err := db.Query(sql, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if metricValue(db, "gus_synopsis_hits_total", "") != 1 {
		t.Fatalf("expected exactly one synopsis hit, metrics: hits=%v", metricValue(db, "gus_synopsis_hits_total", ""))
	}
	off, err := db.Query(sql, WithSeed(1), WithSynopses(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*Result{{base, served}, {off, served}} {
		a, b := pair[0].Values[0], pair[1].Values[0]
		if a.Estimate != b.Estimate || a.StdErr != b.StdErr || a.CILow != b.CILow || a.CIHigh != b.CIHigh {
			t.Fatalf("synopsis-served result differs from full scan:\nfull:    %+v\nserved:  %+v", a, b)
		}
		if pair[0].SampleRows != pair[1].SampleRows {
			t.Fatalf("sample sizes differ: %d vs %d", pair[0].SampleRows, pair[1].SampleRows)
		}
	}
	if served.GUSText != base.GUSText {
		t.Fatalf("top GUS changed under rewrite: %q vs %q", served.GUSText, base.GUSText)
	}
	if !strings.Contains(served.PlanText, "scan synopsis t_10pct as t") {
		t.Fatalf("plan does not show the synopsis scan:\n%s", served.PlanText)
	}
	if metricValue(db, "gus_synopsis_misses_total", "disabled") != 1 {
		t.Fatal("WithSynopses(false) did not record a disabled miss")
	}
}

// TestSynopsisFreshResidualUnbiased: a plain BERNOULLI(p) query over a
// uniform synopsis draws a FRESH residual — different seeds, different
// realizations — and its estimates must stay centered on the truth.
func TestSynopsisFreshResidualUnbiased(t *testing.T) {
	db, _ := synTestDB(t, 20000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn", Table: "t", Rate: 0.2}); err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5)`
	exact, err := db.Exact(sql)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Values[0].Value
	var sum float64
	distinct := map[float64]bool{}
	const trials = 40
	covered := 0
	for i := 0; i < trials; i++ {
		res, err := db.Query(sql, WithSeed(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		v := res.Values[0]
		sum += v.Estimate
		distinct[v.Estimate] = true
		if v.CILow <= truth && truth <= v.CIHigh {
			covered++
		}
	}
	if len(distinct) < trials/2 {
		t.Fatalf("fresh residual produced only %d distinct estimates in %d seeded trials (frozen realization?)", len(distinct), trials)
	}
	mean := sum / trials
	if rel := math.Abs(mean-truth) / truth; rel > 0.05 {
		t.Fatalf("mean of %d synopsis-served estimates off truth by %.1f%% (mean %v, truth %v)", trials, 100*rel, mean, truth)
	}
	if covered < trials*8/10 {
		t.Fatalf("95%% CIs covered truth only %d/%d times", covered, trials)
	}
	if hits := metricValue(db, "gus_synopsis_hits_total", ""); hits != trials {
		t.Fatalf("hits = %v, want %d", hits, trials)
	}
}

// TestSynopsisMissReasons pins the fallback taxonomy: WOR and SYSTEM
// sampling, rates above the synopsis's, mismatched REPEATABLE seeds and
// stale synopses all fall back to the full scan with the right counter.
func TestSynopsisMissReasons(t *testing.T) {
	db, _ := synTestDB(t, 5000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn", Table: "t", Rate: 0.10, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	exact, err := db.Exact(`SELECT SUM(w) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Values[0].Value
	cases := []struct {
		sql    string
		reason string
	}{
		{`SELECT SUM(w) FROM t TABLESAMPLE (1000 ROWS)`, "method"},
		{`SELECT SUM(w) FROM t TABLESAMPLE SYSTEM(10)`, "method"},
		{`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(50)`, "rate"},
		{`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5) REPEATABLE(9)`, "seed"},
	}
	for _, tc := range cases {
		before := metricValue(db, "gus_synopsis_misses_total", tc.reason)
		res, err := db.Query(tc.sql, WithSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if after := metricValue(db, "gus_synopsis_misses_total", tc.reason); after != before+1 {
			t.Errorf("%s: miss{%s} went %v -> %v, want +1", tc.sql, tc.reason, before, after)
		}
		if strings.Contains(res.PlanText, "synopsis") {
			t.Errorf("%s: plan still reads the synopsis:\n%s", tc.sql, res.PlanText)
		}
		v := res.Values[0]
		if rel := math.Abs(v.Estimate-truth) / truth; rel > 0.5 {
			t.Errorf("%s: fallback estimate off truth by %.0f%%", tc.sql, 100*rel)
		}
	}
	if hits := metricValue(db, "gus_synopsis_hits_total", ""); hits != 0 {
		t.Fatalf("no query should have hit, got %v", hits)
	}

	// Stale: an out-of-band append (directly to the relation, bypassing
	// Table.Insert's maintenance hook) must stop the synopsis serving.
	db.mu.Lock()
	rel := db.tables["t"]
	db.mu.Unlock()
	if err := rel.AppendWithID(999999, relation.Tuple{relation.Int(1), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5)`, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if v := metricValue(db, "gus_synopsis_misses_total", "stale"); v != 1 {
		t.Fatalf("stale miss = %v, want 1", v)
	}
	// RefreshSynopsis repairs it.
	if err := db.RefreshSynopsis("syn"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5)`, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(db, "gus_synopsis_hits_total", ""); hits != 1 {
		t.Fatalf("refreshed synopsis did not serve: hits = %v", hits)
	}
}

// TestSynopsisMaintainedOnInsert: rows appended through Table.Insert are
// folded into the synopsis at the coordinated rate, so the synopsis keeps
// serving afterwards and its contents equal a from-scratch rebuild.
func TestSynopsisMaintainedOnInsert(t *testing.T) {
	db, tb := synTestDB(t, 4000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn", Table: "t", Rate: 0.25}); err != nil {
		t.Fatal(err)
	}
	rowsBefore := db.Synopses()[0].Rows
	for i := 4000; i < 8000; i++ {
		if err := tb.InsertWithID(uint64(i), i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	info := db.Synopses()[0]
	if info.Stale {
		t.Fatal("maintained synopsis reported stale after Table.Insert appends")
	}
	if info.SourceRows != 8000 {
		t.Fatalf("SourceRows = %d, want 8000", info.SourceRows)
	}
	// The appended tail must be sampled at the synopsis rate, not kept
	// wholesale or dropped: expect ~25% of 4000 new rows.
	grown := info.Rows - rowsBefore
	if grown < 800 || grown > 1200 {
		t.Fatalf("tail sampling added %d of 4000 rows at rate 0.25", grown)
	}
	// And the maintained synopsis equals a rebuild: same membership rule.
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn2", Table: "t", Rate: 0.25}); err != nil {
		t.Fatal(err)
	}
	infos := db.Synopses()
	if infos[0].Rows != infos[1].Rows {
		t.Fatalf("maintained (%d rows) and rebuilt (%d rows) synopses disagree", infos[0].Rows, infos[1].Rows)
	}
	if _, err := db.Query(`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(10)`); err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(db, "gus_synopsis_hits_total", ""); hits != 1 {
		t.Fatalf("maintained synopsis did not serve: hits = %v", hits)
	}
}

// TestSynopsisExplainAnnotation: EXPLAIN ANALYZE marks the served scan.
func TestSynopsisExplainAnnotation(t *testing.T) {
	db, _ := synTestDB(t, 5000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "tsyn", Table: "t", Rate: 0.2}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`EXPLAIN ANALYZE SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.ExplainText, "synopsis=tsyn") {
		t.Fatalf("EXPLAIN ANALYZE lacks synopsis annotation:\n%s", res.ExplainText)
	}
	if !strings.Contains(res.ExplainText, "synopsis") {
		t.Fatalf("no synopsis decision span:\n%s", res.ExplainText)
	}
}

// TestSynopsisPersistenceRoundTrip: Save + SaveSynopses, reopen from disk,
// LoadSynopses; the loaded synopsis passes integrity, catches up over rows
// appended after the save, and serves queries bit-identically.
func TestSynopsisPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, _ := synTestDB(t, 10000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn", Table: "t", Rate: 0.15, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	const sql = `SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5) REPEATABLE(7)`
	want, err := db.Query(sql, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSynopses(dir); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadSynopses(dir); err != nil {
		t.Fatal(err)
	}
	infos := db2.Synopses()
	if len(infos) != 1 || infos[0].Name != "syn" || infos[0].Stale {
		t.Fatalf("loaded synopses: %+v", infos)
	}
	got, err := db2.Query(sql, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0].Estimate != want.Values[0].Estimate || got.Values[0].StdErr != want.Values[0].StdErr {
		t.Fatalf("loaded synopsis serves different result: %+v vs %+v", got.Values[0], want.Values[0])
	}
	if metricValue(db2, "gus_synopsis_hits_total", "") != 1 {
		t.Fatal("loaded synopsis did not serve the query")
	}
	// Appends after load keep it maintained (segment base + resident tail).
	tb, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 10000; i < 11000; i++ {
		if err := tb.InsertWithID(uint64(i), i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if info := db2.Synopses()[0]; info.Stale || info.SourceRows != 11000 {
		t.Fatalf("synopsis not maintained after load: %+v", info)
	}
}

// TestSynopsisTablesListing: db.Tables() attaches synopsis descriptions
// to their source table.
func TestSynopsisTablesListing(t *testing.T) {
	db, _ := synTestDB(t, 1000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "a", Table: "t", Rate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSynopsis(SynopsisSpec{Name: "b", Table: "t", Rate: 0.5, StratifyBy: "v", Rates: map[string]float64{"1": 0.9}}); err != nil {
		t.Fatal(err)
	}
	tabs := db.Tables()
	if len(tabs) != 1 {
		t.Fatalf("tables: %+v", tabs)
	}
	syns := tabs[0].Synopses
	if len(syns) != 2 || syns[0].Name != "a" || syns[1].Name != "b" {
		t.Fatalf("synopses on t: %+v", syns)
	}
	if syns[0].GUS != "Bernoulli(t, 0.1)" {
		t.Fatalf("GUS rendering: %q", syns[0].GUS)
	}
	if syns[1].MinRate != 0.5 || syns[1].StratifyBy != "v" {
		t.Fatalf("stratified info: %+v", syns[1])
	}
	if syns[0].Bytes <= 0 || syns[0].Rows <= 0 {
		t.Fatalf("missing size info: %+v", syns[0])
	}
	if err := db.DropSynopsis("a"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Tables()[0].Synopses); got != 1 {
		t.Fatalf("after drop: %d synopses", got)
	}
	if err := db.DropSynopsis("a"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

// TestSynopsisProgressive: progressive streams run their waves over the
// synopsis and still converge to a sound estimate.
func TestSynopsisProgressive(t *testing.T) {
	db, _ := synTestDB(t, 20000)
	if err := db.CreateSynopsis(SynopsisSpec{Name: "syn", Table: "t", Rate: 0.2}); err != nil {
		t.Fatal(err)
	}
	exact, err := db.Exact(`SELECT SUM(w) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Values[0].Value
	ch, wait := db.QueryProgressive(context.Background(), `SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(10)`, WithSeed(3))
	var last *Update
	for u := range ch {
		u := u
		last = &u
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no progressive updates")
	}
	if hits := metricValue(db, "gus_synopsis_hits_total", ""); hits != 1 {
		t.Fatalf("progressive did not hit the synopsis: %v", hits)
	}
	v := last.Values[0]
	if rel := math.Abs(v.Estimate-truth) / truth; rel > 0.25 {
		t.Fatalf("progressive estimate off truth by %.0f%% (est %v, truth %v)", 100*rel, v.Estimate, truth)
	}
}

// TestSynopsisStratifiedServesNested: a stratified synopsis serves plain
// Bernoulli queries through the conservative min-rate nested residual and
// the estimate stays sound.
func TestSynopsisStratifiedServesNested(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("t", Column{"grp", String}, Column{"w", Float})
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"x", "y"}
	for i := 0; i < 10000; i++ {
		if err := tb.InsertWithID(uint64(i), groups[i%2], float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateSynopsis(SynopsisSpec{
		Name: "syn", Table: "t", Rate: 0.1,
		StratifyBy: "grp", Rates: map[string]float64{"x": 0.4},
	}); err != nil {
		t.Fatal(err)
	}
	exact, err := db.Exact(`SELECT SUM(w) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Values[0].Value
	res, err := db.Query(`SELECT SUM(w) FROM t TABLESAMPLE BERNOULLI(5)`, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if metricValue(db, "gus_synopsis_hits_total", "") != 1 {
		t.Fatal("stratified synopsis did not serve")
	}
	v := res.Values[0]
	if v.CILow > truth || truth > v.CIHigh {
		// A single 95% CI can miss; require only sanity here, the
		// calibration bench measures coverage properly.
		if rel := math.Abs(v.Estimate-truth) / truth; rel > 0.25 {
			t.Fatalf("stratified-served estimate far off truth: est %v truth %v", v.Estimate, truth)
		}
	}
}
