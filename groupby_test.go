package gus

import (
	"math"
	"testing"

	"github.com/sampling-algebra/gus/internal/stats"
)

func TestGroupByEstimates(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("ev", Column{"cat", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	// Three categories with very different sums.
	rng := stats.NewRNG(17)
	for i := 0; i < 9000; i++ {
		cat := i % 3
		base := float64(cat+1) * 10
		if err := tb.Insert(cat, base+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	sql := `SELECT SUM(v) AS s, COUNT(*) AS n FROM ev TABLESAMPLE (20 PERCENT) GROUP BY cat`
	exact, err := db.Exact(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(sql, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Error("grouped query should not fill flat Values")
	}
	if len(res.Groups) != 3 || len(exact.Groups) != 3 {
		t.Fatalf("groups = %d sampled, %d exact", len(res.Groups), len(exact.Groups))
	}
	for i, g := range res.Groups {
		eg := exact.Groups[i]
		if g.Key != eg.Key {
			t.Fatalf("group order mismatch: %q vs %q", g.Key, eg.Key)
		}
		truth := eg.Values[0].Estimate
		est := g.Values[0]
		if stats.RelErr(est.Estimate, truth) > 0.2 {
			t.Errorf("group %s: estimate %v vs truth %v", g.Key, est.Estimate, truth)
		}
		if est.StdErr <= 0 {
			t.Errorf("group %s: missing stderr", g.Key)
		}
		if est.CILow >= est.CIHigh {
			t.Errorf("group %s: degenerate CI", g.Key)
		}
		// Per-group COUNT ≈ 3000.
		if stats.RelErr(g.Values[1].Estimate, 3000) > 0.2 {
			t.Errorf("group %s: count %v", g.Key, g.Values[1].Estimate)
		}
	}
}

func TestGroupByCoverage(t *testing.T) {
	// Per-group CIs must cover the per-group truths at ≈ nominal rate.
	db := Open()
	tb, err := db.CreateTable("gv", Column{"k", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	for i := 0; i < 6000; i++ {
		if err := tb.Insert(i%2, 5+10*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	sql := `SELECT SUM(v) FROM gv TABLESAMPLE (15 PERCENT) GROUP BY k`
	exact, err := db.Exact(sql)
	if err != nil {
		t.Fatal(err)
	}
	truths := map[string]float64{}
	for _, g := range exact.Groups {
		truths[g.Key] = g.Values[0].Estimate
	}
	var cov stats.Coverage
	for seed := uint64(0); seed < 60; seed++ {
		res, err := db.Query(sql, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range res.Groups {
			v := g.Values[0]
			cov.Observe(v.CILow, v.CIHigh, truths[g.Key])
		}
	}
	// Fail only when the Wilson interval on the observed coverage rate
	// confidently excludes near-nominal coverage: a hard cutoff on the
	// point rate flakes on small samples, the interval does not.
	if _, hi := cov.Wilson(0.99); hi < 0.90 {
		lo, _ := cov.Wilson(0.99)
		t.Errorf("per-group 95%% CI coverage = %v (99%% Wilson [%v, %v]) over %d observations",
			cov.Rate(), lo, hi, cov.Trials())
	}
}

func TestGroupByOverJoin(t *testing.T) {
	db := Open()
	if err := db.AttachTPCH(0.002, 9); err != nil {
		t.Fatal(err)
	}
	sql := `
SELECT SUM(l_extendedprice)
FROM lineitem TABLESAMPLE (30 PERCENT), orders
WHERE l_orderkey = o_orderkey
GROUP BY o_custkey`
	res, err := db.Query(sql, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	exact, err := db.Exact(sql)
	if err != nil {
		t.Fatal(err)
	}
	// Exact runs produce zero-width CIs per group.
	for _, g := range exact.Groups {
		if g.Values[0].StdErr != 0 {
			t.Fatalf("exact group %s has stderr %v", g.Key, g.Values[0].StdErr)
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	db := Open()
	tb, _ := db.CreateTable("t", Column{"k", Int}, Column{"v", Float})
	_ = tb.Insert(1, 2.0)
	if _, err := db.Query("SELECT SUM(v) FROM t GROUP BY nosuch"); err == nil {
		t.Error("unknown GROUP BY column accepted")
	}
	if _, err := db.Query("SELECT SUM(v) FROM t GROUP BY k, v"); err == nil {
		t.Error("multi-column GROUP BY accepted")
	}
	if _, err := db.Query("SELECT SUM(v) FROM t GROUP k"); err == nil {
		t.Error("GROUP without BY accepted")
	}
}

func TestGroupByAvgAndQuantile(t *testing.T) {
	db := Open()
	tb, _ := db.CreateTable("t", Column{"k", Int}, Column{"v", Float})
	rng := stats.NewRNG(8)
	for i := 0; i < 4000; i++ {
		if err := tb.Insert(i%2, float64(1+rng.Intn(9))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`
SELECT AVG(v) AS a, QUANTILE(SUM(v), 0.95) AS q
FROM t TABLESAMPLE (25 PERCENT) GROUP BY k`, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if !g.Values[0].Approximate {
			t.Error("group AVG not flagged approximate")
		}
		if g.Values[1].Value <= g.Values[1].Estimate {
			t.Error("0.95 quantile should exceed the estimate")
		}
	}
}

// TestGroupByKeyIdentity is the grouping half of the key-aliasing
// regression: the typed grouper must reproduce exactly the per-row
// AsString group identity it replaced — strings with embedded NULs and
// prefix relationships stay distinct groups, every NaN lands in ONE group,
// and -0.0/+0.0 remain the two distinct groups their "-0"/"0" renderings
// always were.
func TestGroupByKeyIdentity(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("s", Column{"k", String}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	// "a"+"b" vs "ab" style neighbors, empty string, NUL boundary abuse.
	keys := []string{"a", "ab", "a\x00b", "", "a", "\x00ab", "ab"}
	for i, k := range keys {
		if err := tb.Insert(k, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT COUNT(*) AS n FROM s GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 5 {
		t.Fatalf("string groups = %d, want 5 (keys aliased or over-split)", len(res.Groups))
	}
	counts := map[string]float64{}
	for _, g := range res.Groups {
		counts[g.Key] = g.Values[0].Estimate
	}
	if counts["a"] != 2 || counts["ab"] != 2 || counts["a\x00b"] != 1 || counts[""] != 1 || counts["\x00ab"] != 1 {
		t.Fatalf("group counts wrong: %v", counts)
	}

	fb, err := db.CreateTable("f", Column{"k", Float}, Column{"v", Int})
	if err != nil {
		t.Fatal(err)
	}
	negZero := math.Copysign(0, -1)
	for _, k := range []float64{0, negZero, math.NaN(), math.NaN(), 0, 1.5} {
		if err := fb.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	fres, err := db.Query(`SELECT COUNT(*) AS n FROM f GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	// Groups: "-0", "0", "1.5", "NaN" — AsString identity exactly.
	if len(fres.Groups) != 4 {
		t.Fatalf("float groups = %d, want 4: %+v", len(fres.Groups), fres.Groups)
	}
	fcounts := map[string]float64{}
	for _, g := range fres.Groups {
		fcounts[g.Key] = g.Values[0].Estimate
	}
	if fcounts["0"] != 2 || fcounts["-0"] != 1 || fcounts["NaN"] != 2 || fcounts["1.5"] != 1 {
		t.Fatalf("float group counts wrong: %v", fcounts)
	}
}
