package gus

// Tests for the parallel partitioned engine as seen through the public
// API: seeded results must be bit-identical at every worker count, and a
// DB must serve many concurrent queries (run with -race to check the
// engine's and catalog's synchronization).

import (
	"fmt"
	"sync"
	"testing"
)

// requireSameValue compares two result values bit-for-bit.
func requireSameValue(t *testing.T, label string, a, b Value) {
	t.Helper()
	if a.Name != b.Name || a.Kind != b.Kind {
		t.Fatalf("%s: identity %q/%q vs %q/%q", label, a.Name, a.Kind, b.Name, b.Kind)
	}
	checks := []struct {
		what string
		x, y float64
	}{
		{"Value", a.Value, b.Value},
		{"Estimate", a.Estimate, b.Estimate},
		{"StdErr", a.StdErr, b.StdErr},
		{"CILow", a.CILow, b.CILow},
		{"CIHigh", a.CIHigh, b.CIHigh},
	}
	for _, c := range checks {
		if c.x != c.y {
			t.Fatalf("%s: %s differs across worker counts: %.17g vs %.17g", label, c.what, c.x, c.y)
		}
	}
}

func requireSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.SampleRows != b.SampleRows {
		t.Fatalf("%s: sample rows %d vs %d", label, a.SampleRows, b.SampleRows)
	}
	if len(a.Values) != len(b.Values) || len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: shape differs", label)
	}
	for i := range a.Values {
		requireSameValue(t, fmt.Sprintf("%s value %d", label, i), a.Values[i], b.Values[i])
	}
	for i := range a.Groups {
		if a.Groups[i].Key != b.Groups[i].Key {
			t.Fatalf("%s: group key %q vs %q", label, a.Groups[i].Key, b.Groups[i].Key)
		}
		for j := range a.Groups[i].Values {
			requireSameValue(t, fmt.Sprintf("%s group %s value %d", label, a.Groups[i].Key, j),
				a.Groups[i].Values[j], b.Groups[i].Values[j])
		}
	}
}

// TestWorkerCountInvariance: the engine determinism contract end to end,
// across the TPC-H query suite, several seeds, and 1 vs 2 vs 8 workers.
func TestWorkerCountInvariance(t *testing.T) {
	db := testDB(t, 3000)
	queries := []string{
		paperQuery1,
		`SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) AS lo,
		        QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) AS hi
		 FROM lineitem TABLESAMPLE (10 PERCENT), orders TABLESAMPLE (1000 ROWS)
		 WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0`,
		`SELECT COUNT(*) AS n, AVG(l_extendedprice) AS m
		 FROM lineitem TABLESAMPLE (20 PERCENT)`,
		`SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (30 PERCENT) REPEATABLE (9)`,
		`SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE SYSTEM (25)`,
	}
	for qi, sql := range queries {
		for seed := uint64(1); seed <= 3; seed++ {
			ref, err := db.Query(sql, WithSeed(seed), WithWorkers(1))
			if err != nil {
				t.Fatalf("query %d seed %d: %v", qi, seed, err)
			}
			for _, w := range []int{2, 8} {
				got, err := db.Query(sql, WithSeed(seed), WithWorkers(w))
				if err != nil {
					t.Fatalf("query %d seed %d workers %d: %v", qi, seed, w, err)
				}
				requireSameResult(t, fmt.Sprintf("query %d seed %d workers %d", qi, seed, w), ref, got)
			}
		}
	}
}

// TestWorkerCountInvarianceGroupBy covers the GROUP BY path, whose
// per-group estimates re-enter the sharded accumulators on row subsets.
func TestWorkerCountInvarianceGroupBy(t *testing.T) {
	db := Open()
	tb, err := db.CreateTable("ev", Column{"cat", Int}, Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		if err := tb.Insert(i%5, float64(i%97)+0.25); err != nil {
			t.Fatal(err)
		}
	}
	sql := `SELECT SUM(v) AS s, COUNT(*) AS n FROM ev TABLESAMPLE (25 PERCENT) GROUP BY cat`
	ref, err := db.Query(sql, WithSeed(12), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Groups) != 5 {
		t.Fatalf("groups = %d", len(ref.Groups))
	}
	for _, w := range []int{2, 8} {
		got, err := db.Query(sql, WithSeed(12), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("groupby workers=%d", w), ref, got)
	}
}

// TestWorkerCountInvarianceAnalyses covers Exact, Robustness and variance
// sub-sampling.
func TestWorkerCountInvarianceAnalyses(t *testing.T) {
	db := testDB(t, 2000)
	joinSQL := `SELECT SUM(l_extendedprice) FROM lineitem, orders WHERE l_orderkey = o_orderkey`
	ref, err := db.Exact(joinSQL, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Exact(joinSQL, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "exact", ref, got)

	refR, err := db.Robustness(joinSQL, 0.95, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := db.Robustness(joinSQL, 0.95, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "robustness", refR, gotR)

	subSQL := `SELECT SUM(l_extendedprice) FROM lineitem TABLESAMPLE (50 PERCENT)`
	refS, err := db.Query(subSQL, WithSeed(2), WithWorkers(1), WithVarianceSubsampling(400))
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := db.Query(subSQL, WithSeed(2), WithWorkers(8), WithVarianceSubsampling(400))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "subsample", refS, gotS)
}

// TestConcurrentQueries hammers one DB with concurrent mixed queries —
// the service workload gusserve handles. Run with -race.
func TestConcurrentQueries(t *testing.T) {
	db := testDB(t, 1500)
	queries := []string{
		paperQuery1,
		`SELECT COUNT(*) FROM lineitem TABLESAMPLE (15 PERCENT)`,
		`SELECT AVG(l_quantity) FROM lineitem TABLESAMPLE (20 PERCENT)`,
		`SELECT SUM(o_totalprice) FROM orders TABLESAMPLE (500 ROWS)`,
	}
	// Reference results per (query, seed) for cross-goroutine agreement.
	type key struct {
		q    int
		seed uint64
	}
	refs := map[key]*Result{}
	for qi := range queries {
		for seed := uint64(0); seed < 4; seed++ {
			r, err := db.Query(queries[qi], WithSeed(seed), WithWorkers(2))
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			refs[key{qi, seed}] = r
		}
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				qi := (g + iter) % len(queries)
				seed := uint64((g * 7) % 4)
				res, err := db.Query(queries[qi], WithSeed(seed), WithWorkers(2))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				want := refs[key{qi, seed}]
				if res.SampleRows != want.SampleRows ||
					len(res.Values) != len(want.Values) ||
					res.Values[0].Estimate != want.Values[0].Estimate {
					errs <- fmt.Errorf("goroutine %d: result drifted under concurrency", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentQueriesWithWrites interleaves queries with catalog writes
// on an unrelated table: the RWMutex must serialize them without races.
func TestConcurrentQueriesWithWrites(t *testing.T) {
	db := testDB(t, 800)
	scratch, err := db.CreateTable("scratch", Column{"v", Float})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem TABLESAMPLE (10 PERCENT)`,
					WithSeed(uint64(g*10+i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := scratch.Insert(float64(i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if scratch.Len() != 200 {
		t.Errorf("scratch rows = %d", scratch.Len())
	}
}

// TestSetWorkersDefault: SetWorkers changes the default without changing
// results.
func TestSetWorkersDefault(t *testing.T) {
	db := testDB(t, 1000)
	ref, err := db.Query(paperQuery1, WithSeed(3), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	db.SetWorkers(8)
	got, err := db.Query(paperQuery1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "SetWorkers(8) default", ref, got)
	db.SetWorkers(0) // restore GOMAXPROCS default
}
