// Prepared statements and the DB-wide plan cache: the compile-once /
// execute-many half of the public API.
//
// db.Prepare(sql) parses, plans, GUS-structures and (lazily, on first
// execution per binding-kind signature) vector-compiles a statement ONCE;
// the returned *Stmt then executes any number of times with positional `?`
// parameters bound late — into comparison predicates, aggregate arguments
// and TABLESAMPLE clauses — plus per-call Options. Executing a *Stmt skips
// lexing, parsing, catalog resolution, predicate classification, join
// ordering and kernel compilation entirely; only the cheap per-execution
// work remains (binding the plan spine, re-deriving the GUS parameters
// from the bound sampling rates, running the engine, estimating).
//
// db.Query/Exact/QueryProgressive are thin wrappers over an internal
// bounded LRU plan cache keyed by normalized SQL, so unchanged callers get
// the same amortization transparently. Cache entries are tagged with the
// catalog generation and dropped after any catalog write (CreateTable,
// LoadCSV, AttachTPCH, Insert), so a write never serves a stale plan.
package gus

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/sampling-algebra/gus/internal/engine"
	"github.com/sampling-algebra/gus/internal/plan"
	"github.com/sampling-algebra/gus/internal/relation"
	"github.com/sampling-algebra/gus/internal/sqlparse"
)

// Stmt is a prepared statement: one parse + plan, arbitrarily many
// executions. A Stmt is immutable after Prepare and safe for concurrent
// use — any number of goroutines may Query/Exact/QueryProgressive the same
// Stmt with different bindings, seeds and worker counts simultaneously,
// and every execution is bit-identical to running the equivalent
// literal-SQL query through db.Query with the same options.
//
// Placeholders are positional: bare `?` takes the next index, `?N`
// addresses parameter N (1-based) explicitly. They may appear anywhere a
// literal may: comparison and arithmetic expressions in WHERE, aggregate
// arguments in the SELECT list, and the numeric argument of TABLESAMPLE
// (? PERCENT | ? ROWS), BERNOULLI(?) and SYSTEM(?) — sampling-rate
// bindings re-derive the plan's GUS parameters on every execution, so the
// estimator's variance model always prices the rates actually bound.
type Stmt struct {
	db   *DB
	sql  string
	tmpl *sqlparse.Template
	prep *engine.Prepared
	// sm is this statement shape's pre-resolved metric slots, bound once at
	// Prepare so per-execution metric updates are pure atomics.
	sm *shapeMetrics
}

// Prepare compiles sql once for repeated execution. The statement is
// planned against the current catalog; tables it references must already
// exist. Unlike the implicit cache behind db.Query, a user-held Stmt is
// never invalidated: it keeps executing against the live table data
// (inserts are visible to later executions).
func (db *DB) Prepare(sql string) (*Stmt, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	tmpl, err := sqlparse.PlanTemplate(q, catalog{db})
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db:   db,
		sql:  sql,
		tmpl: tmpl,
		prep: engine.NewPrepared(),
		sm:   db.metrics.shapeSlot(sqlparse.Normalize(sql)),
	}, nil
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams reports how many positional placeholders the statement binds.
func (s *Stmt) NumParams() int { return s.tmpl.NumParams() }

// Query executes the prepared statement with the given positional
// parameter values and returns the estimated result, exactly as db.Query
// would for the literal-SQL equivalent. args holds one Go value per
// placeholder, in order — int/int64 (and friends) bind as SQL integers,
// float64 as floats, string as strings — and may additionally contain
// Option values (WithSeed, WithWorkers, WithInterval, …) anywhere, which
// apply to this call only.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Result, error) {
	vals, opts, err := splitArgs(args)
	if err != nil {
		return nil, err
	}
	return s.exec(ctx, vals, s.db.buildOptions(opts), false)
}

// Exact executes the statement with all sampling stripped — the true
// answer for the bound parameters, mirroring db.Exact.
func (s *Stmt) Exact(ctx context.Context, args ...any) (*Result, error) {
	vals, opts, err := splitArgs(args)
	if err != nil {
		return nil, err
	}
	return s.exec(ctx, vals, s.db.buildOptions(opts), true)
}

// exec binds the plan template and runs it. The catalog read-lock is held
// for the duration, like db.Query.
func (s *Stmt) exec(ctx context.Context, vals []relation.Value, o queryOptions, exact bool) (*Result, error) {
	o.args, o.prep = vals, s.prep
	o.sm, o.sql = s.sm, s.sql
	if o.trace == nil && s.tmpl.Explain() {
		// EXPLAIN ANALYZE through a directly-Prepared Stmt: no trace was
		// attached upstream, so allocate one here for the rendered output.
		o.trace = &Trace{}
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	planned, err := s.tmpl.Bind(vals, sqlparse.PlannerOptions{
		SystemBlockSize: o.systemBlockSize,
		Seed:            o.seed,
	})
	if err != nil {
		s.db.metrics.queriesErr.Inc()
		if o.sm != nil {
			o.sm.errors.Inc()
		}
		return nil, err
	}
	if exact {
		planned.Root = plan.StripSampling(planned.Root)
	} else {
		// Serve sampled scans from materialized synopses where the
		// subsumption check allows (see synopsis.go). Applied to the
		// freshly bound plan on every execution — never to the cached
		// template — so creating or dropping a synopsis needs no cache
		// invalidation, and exact runs always scan base tables.
		planned.Root = s.db.applySynopses(planned.Root, &o)
	}
	// Narrow every scan to the columns the query reads (see prune.go) —
	// applied after the synopsis rewrite so a substituted synopsis scan
	// is narrowed the same way its base table would be.
	planned.Root = pruneScanColumns(planned.Root, neededColumns(planned))
	res, err := s.db.run(ctx, planned, o)
	if err != nil {
		return nil, err
	}
	if s.tmpl.Explain() {
		res.ExplainText = o.trace.Format()
	}
	return res, nil
}

// splitArgs separates a Stmt call's variadic arguments into positional
// parameter values and per-call options. Integer kinds widen to int64,
// float32 to float64; anything else (other than string and Option) is a
// bind error naming the offending position.
func splitArgs(args []any) ([]relation.Value, []Option, error) {
	var vals []relation.Value
	var opts []Option
	for i, a := range args {
		switch x := a.(type) {
		case Option:
			opts = append(opts, x)
			continue
		case nil:
			return nil, nil, fmt.Errorf("gus: argument %d: nil is not bindable (no NULLs in this dialect)", i+1)
		}
		v, err := bindValue(a)
		if err != nil {
			return nil, nil, fmt.Errorf("gus: argument %d: %w", i+1, err)
		}
		vals = append(vals, v)
	}
	return vals, opts, nil
}

// bindValue coerces one Go value to the relation.Value a literal of the
// same kind would have parsed to.
func bindValue(a any) (relation.Value, error) {
	switch x := a.(type) {
	case int:
		return relation.Int(int64(x)), nil
	case int8:
		return relation.Int(int64(x)), nil
	case int16:
		return relation.Int(int64(x)), nil
	case int32:
		return relation.Int(int64(x)), nil
	case int64:
		return relation.Int(x), nil
	case uint:
		if uint64(x) > math.MaxInt64 {
			return relation.Value{}, fmt.Errorf("uint value %d overflows int64", x)
		}
		return relation.Int(int64(x)), nil
	case uint8:
		return relation.Int(int64(x)), nil
	case uint16:
		return relation.Int(int64(x)), nil
	case uint32:
		return relation.Int(int64(x)), nil
	case uint64:
		if x > math.MaxInt64 {
			return relation.Value{}, fmt.Errorf("uint64 value %d overflows int64", x)
		}
		return relation.Int(int64(x)), nil
	case float32:
		return relation.Float(float64(x)), nil
	case float64:
		return relation.Float(x), nil
	case string:
		return relation.String_(x), nil
	default:
		return relation.Value{}, fmt.Errorf("unsupported parameter type %T (bind int, float64 or string)", a)
	}
}

// ---------------------------------------------------------------------------
// DB-wide plan cache.

// DefaultPlanCacheSize is the LRU capacity of the implicit plan cache
// behind db.Query/Exact/QueryProgressive (distinct normalized statements).
const DefaultPlanCacheSize = 128

// PlanCacheStats is a snapshot of the implicit plan cache's counters.
type PlanCacheStats struct {
	// Hits and Misses count lookups since Open. A catalog write turns the
	// next lookup of every cached statement into a miss (invalidation).
	Hits, Misses uint64
	// Entries is the number of cached plans right now.
	Entries int
}

// PlanCacheStats reports hit/miss counters and the current entry count of
// the implicit plan cache.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return db.plans.stats()
}

// SetPlanCacheCap resizes the implicit plan cache (default
// DefaultPlanCacheSize). n ≤ 0 disables caching and clears it — every
// db.Query then re-prepares, the pre-cache behavior.
func (db *DB) SetPlanCacheCap(n int) {
	db.plans.resize(n)
}

// PrepareCached returns the DB's cached prepared statement for sql,
// preparing and caching it on a miss. This is the handle db.Query uses
// internally; callers that need to bind arguments to ad-hoc SQL (e.g. a
// query service) use it to share the same amortization and invalidation.
// The key is the normalized statement text, so formatting differences hit
// the same entry.
func (db *DB) PrepareCached(sql string) (*Stmt, error) {
	st, _, err := db.prepareCached(sql)
	return st, err
}

// prepareCached additionally reports whether the statement came from the
// cache, for the trace's parse+plan span.
func (db *DB) prepareCached(sql string) (*Stmt, bool, error) {
	key := sqlparse.Normalize(sql)
	// The generation is read BEFORE planning: if a catalog write lands in
	// between, the entry is tagged with the older generation and the next
	// lookup discards it — stale plans are never served.
	gen := db.gen.Load()
	if st := db.plans.get(key, gen); st != nil {
		return st, true, nil
	}
	st, err := db.Prepare(sql)
	if err != nil {
		return nil, false, err
	}
	db.plans.put(key, st, gen)
	return st, false, nil
}

// planCache is a mutex-guarded LRU of prepared statements, each tagged
// with the catalog generation it was planned under.
type planCache struct {
	mu           sync.Mutex
	cap          int
	lru          *list.List // front = most recently used; values are *cacheEntry
	m            map[string]*list.Element
	hits, misses atomic.Uint64
}

type cacheEntry struct {
	key string
	st  *Stmt
	gen uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, lru: list.New(), m: map[string]*list.Element{}}
}

func (c *planCache) get(key string, gen uint64) *Stmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if ok {
		ent := el.Value.(*cacheEntry)
		if ent.gen == gen {
			c.lru.MoveToFront(el)
			c.hits.Add(1)
			return ent.st
		}
		// Catalog changed since this plan was built: invalidate.
		c.lru.Remove(el)
		delete(c.m, key)
	}
	c.misses.Add(1)
	return nil
}

func (c *planCache) put(key string, st *Stmt, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.m[key]; ok {
		el.Value = &cacheEntry{key: key, st: st, gen: gen}
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, st: st, gen: gen})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *planCache) resize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	for c.lru.Len() > max(0, n) {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.lru.Len()}
}
