package gus

// Column pruning: a per-execution plan rewrite that records on every scan
// the subset of its columns the rest of the query can read — aggregate
// arguments, GROUP BY, selection/join/projection inputs. The engine then
// materializes sampled tuples only that wide (batch.Narrow), which on a
// TPC-H Q1-style query is the difference between gathering all sixteen
// lineitem columns per sampled tuple and the two the SUM touches. Like
// the synopsis rewrite it runs on the freshly bound plan, cloning the
// spine so cached templates stay untouched; it never changes plan shape
// or node numbering, so seeded sampling realizations are bit-identical
// with pruning on or off.

import (
	"github.com/sampling-algebra/gus/internal/expr"
	"github.com/sampling-algebra/gus/internal/plan"
	"github.com/sampling-algebra/gus/internal/sqlparse"
)

// neededColumns collects every column name the query can reference above
// its scans. Column names are globally unique across a query's tables
// (the planner rejects duplicates), so one set serves all scans.
func neededColumns(p *sqlparse.Planned) map[string]bool {
	need := map[string]bool{}
	add := func(cols []string) {
		for _, c := range cols {
			need[c] = true
		}
	}
	for _, a := range p.Aggregates {
		if a.Arg != nil {
			add(expr.Columns(a.Arg))
		}
	}
	if p.GroupBy != "" {
		need[p.GroupBy] = true
	}
	plan.Walk(p.Root, func(n plan.Node) {
		switch t := n.(type) {
		case *plan.Select:
			add(expr.Columns(t.Pred))
		case *plan.Join:
			need[t.LeftCol] = true
			need[t.RightCol] = true
		case *plan.Theta:
			add(expr.Columns(t.Pred))
		case *plan.Project:
			for _, e := range t.Exprs {
				add(expr.Columns(e))
			}
		}
	})
	return need
}

// pruneScanColumns clones the plan with each scan's Cols set to the
// needed subset of its schema, in schema order. A scan whose columns are
// all needed keeps Cols nil (no narrowing); a scan none of whose columns
// are referenced (COUNT(*)) keeps its first column as the row spine.
func pruneScanColumns(n plan.Node, need map[string]bool) plan.Node {
	switch t := n.(type) {
	case *plan.Scan:
		cols := prunedCols(t, need)
		if cols == nil {
			return t
		}
		return &plan.Scan{Rel: t.Rel, Alias: t.Alias, Synopsis: t.Synopsis, FullRows: t.FullRows, Cols: cols}
	case *plan.Sample:
		return &plan.Sample{Input: pruneScanColumns(t.Input, need), Method: t.Method}
	case *plan.GUS:
		return &plan.GUS{Input: pruneScanColumns(t.Input, need), G: t.G}
	case *plan.Select:
		return &plan.Select{Input: pruneScanColumns(t.Input, need), Pred: t.Pred}
	case *plan.Join:
		return &plan.Join{Left: pruneScanColumns(t.Left, need), Right: pruneScanColumns(t.Right, need), LeftCol: t.LeftCol, RightCol: t.RightCol}
	case *plan.Theta:
		return &plan.Theta{Left: pruneScanColumns(t.Left, need), Right: pruneScanColumns(t.Right, need), Pred: t.Pred}
	case *plan.Project:
		return &plan.Project{Input: pruneScanColumns(t.Input, need), Names: t.Names, Exprs: t.Exprs}
	case *plan.Union:
		return &plan.Union{Left: pruneScanColumns(t.Left, need), Right: pruneScanColumns(t.Right, need)}
	case *plan.Intersect:
		return &plan.Intersect{Left: pruneScanColumns(t.Left, need), Right: pruneScanColumns(t.Right, need)}
	default:
		return n
	}
}

func prunedCols(s *plan.Scan, need map[string]bool) []string {
	sch := s.Rel.Schema()
	kept := make([]string, 0, len(need))
	for _, c := range sch.Columns() {
		if need[c.Name] {
			kept = append(kept, c.Name)
		}
	}
	if len(kept) == sch.Len() {
		return nil
	}
	if len(kept) == 0 {
		kept = append(kept, sch.Col(0).Name)
	}
	return kept
}
